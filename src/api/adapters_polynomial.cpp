/// \file adapters_polynomial.cpp
/// Adapters over the paper's polynomial-time optimal algorithms. Each
/// capability predicate states the exact Tables-1/2 cell the theorem proves
/// tractable: platform class x mapping kind x objective x constraint shape.
/// Outside its cell a solver is simply not applicable — dispatch then
/// degrades to exact search or the heuristic ladder.

#include "api/adapters.hpp"

#include <memory>
#include <optional>

#include "algorithms/bicriteria_period_latency.hpp"
#include "algorithms/energy_interval_dp.hpp"
#include "algorithms/energy_matching.hpp"
#include "algorithms/interval_period_multi.hpp"
#include "algorithms/latency_algorithms.hpp"
#include "algorithms/one_to_one_period.hpp"
#include "algorithms/tricriteria_unimodal.hpp"

namespace pipeopt::api {

namespace {

using detail::no_constraints;
using detail::only_period_bounds;
using detail::thresholds_or_unconstrained;

bool fully_homogeneous(const core::Problem& problem) {
  return problem.platform().classify() == core::PlatformClass::FullyHomogeneous;
}

/// Uniform bandwidth == comm-homogeneous or better (the classes nest).
bool comm_homogeneous(const core::Problem& problem) {
  return problem.platform().has_uniform_bandwidth();
}

bool uni_modal(const core::Problem& problem) {
  return problem.platform().is_uni_modal();
}

/// Converts a native optional<Solution> (nullopt = infeasible) into the
/// typed result. Polynomial solvers prove optimality within their cell.
SolveResult from_solution(const core::Problem& problem, Objective objective,
                          const std::optional<algorithms::Solution>& solution) {
  if (!solution) return detail::infeasible();
  return detail::solved(problem, objective, solution->mapping, /*optimal=*/true);
}

void add(SolverRegistry& registry, SolverInfo info,
         LambdaSolver::ApplicableFn applicable, LambdaSolver::RunFn run) {
  registry.add(std::make_unique<LambdaSolver>(std::move(info),
                                              std::move(applicable),
                                              std::move(run)));
}

}  // namespace

void register_polynomial_solvers(SolverRegistry& registry) {
  // Theorem 3: interval period on fully homogeneous platforms (chains-on-
  // chains DP per application + Algorithm 2 processor allocation).
  add(registry,
      {.name = "interval-period-dp",
       .summary = "Thm 3: interval period DP, fully homogeneous platforms",
       .tier = CostTier::Polynomial,
       .rank = 0,
       .family = MappingKind::Interval,
       .exact = true},
      [](const core::Problem& p, const SolveRequest& r) {
        return r.objective == Objective::Period &&
               r.kind == MappingKind::Interval && fully_homogeneous(p) &&
               no_constraints(r.constraints);
      },
      [](const core::Problem& p, const SolveRequest& r) {
        return from_solution(p, r.objective, algorithms::interval_min_period(p));
      });

  // Theorem 1: one-to-one period on communication-homogeneous platforms
  // (binary search over the candidate set + Algorithm 1 greedy assignment).
  add(registry,
      {.name = "one-to-one-period",
       .summary = "Thm 1: one-to-one period matching, comm-homogeneous platforms",
       .tier = CostTier::Polynomial,
       .rank = 0,
       .family = MappingKind::OneToOne,
       .exact = true},
      [](const core::Problem& p, const SolveRequest& r) {
        return r.objective == Objective::Period &&
               r.kind == MappingKind::OneToOne && comm_homogeneous(p) &&
               no_constraints(r.constraints);
      },
      [](const core::Problem& p, const SolveRequest& r) {
        return from_solution(p, r.objective,
                             algorithms::one_to_one_min_period(p));
      });

  // Theorem 8: one-to-one latency on fully homogeneous platforms (all
  // one-to-one mappings are equivalent).
  add(registry,
      {.name = "one-to-one-latency",
       .summary = "Thm 8: one-to-one latency, fully homogeneous platforms",
       .tier = CostTier::Polynomial,
       .rank = 0,
       .family = MappingKind::OneToOne,
       .exact = true},
      [](const core::Problem& p, const SolveRequest& r) {
        return r.objective == Objective::Latency &&
               r.kind == MappingKind::OneToOne && fully_homogeneous(p) &&
               no_constraints(r.constraints);
      },
      [](const core::Problem& p, const SolveRequest& r) {
        return from_solution(p, r.objective,
                             algorithms::one_to_one_min_latency_fully_hom(p));
      });

  // Theorem 12: interval latency on communication-homogeneous platforms
  // (whole application per processor, fastest processors win).
  add(registry,
      {.name = "interval-latency",
       .summary = "Thm 12: interval latency, comm-homogeneous platforms",
       .tier = CostTier::Polynomial,
       .rank = 0,
       .family = MappingKind::Interval,
       .exact = true},
      [](const core::Problem& p, const SolveRequest& r) {
        return r.objective == Objective::Latency &&
               r.kind == MappingKind::Interval && comm_homogeneous(p) &&
               no_constraints(r.constraints);
      },
      [](const core::Problem& p, const SolveRequest& r) {
        return from_solution(p, r.objective,
                             algorithms::interval_min_latency(p));
      });

  // Theorems 18/21: interval energy under per-app period bounds on fully
  // homogeneous (multi-modal) platforms — prefix DP + processor knapsack.
  add(registry,
      {.name = "energy-interval-dp",
       .summary = "Thms 18/21: interval energy DP under period bounds, "
                  "fully homogeneous platforms",
       .tier = CostTier::Polynomial,
       .rank = 10,
       .family = MappingKind::Interval,
       .exact = true},
      [](const core::Problem& p, const SolveRequest& r) {
        return r.objective == Objective::Energy &&
               r.kind == MappingKind::Interval && fully_homogeneous(p) &&
               only_period_bounds(r.constraints);
      },
      [](const core::Problem& p, const SolveRequest& r) {
        return from_solution(p, r.objective,
                             algorithms::interval_min_energy_under_period(
                                 p, *r.constraints.period));
      });

  // Theorem 19: one-to-one energy under period bounds on comm-homogeneous
  // platforms, via minimum-weight bipartite matching.
  add(registry,
      {.name = "energy-matching",
       .summary = "Thm 19: one-to-one energy matching under period bounds, "
                  "comm-homogeneous platforms",
       .tier = CostTier::Polynomial,
       .rank = 10,
       .family = MappingKind::OneToOne,
       .exact = true},
      [](const core::Problem& p, const SolveRequest& r) {
        return r.objective == Objective::Energy &&
               r.kind == MappingKind::OneToOne && comm_homogeneous(p) &&
               only_period_bounds(r.constraints);
      },
      [](const core::Problem& p, const SolveRequest& r) {
        return from_solution(p, r.objective,
                             algorithms::one_to_one_min_energy_under_period(
                                 p, *r.constraints.period));
      });

  // Theorem 16: period/latency bi-criteria on fully homogeneous platforms
  // (either criterion minimized under per-app bounds on the other).
  add(registry,
      {.name = "bicriteria-period-latency",
       .summary = "Thm 16: period under latency bounds (and vice versa), "
                  "fully homogeneous platforms",
       .tier = CostTier::Polynomial,
       .rank = 20,
       .family = MappingKind::Interval,
       .exact = true},
      [](const core::Problem& p, const SolveRequest& r) {
        if (r.kind != MappingKind::Interval || !fully_homogeneous(p) ||
            r.constraints.energy_budget) {
          return false;
        }
        if (r.objective == Objective::Period) {
          return r.constraints.latency.has_value() && !r.constraints.period;
        }
        if (r.objective == Objective::Latency) {
          return r.constraints.period.has_value() && !r.constraints.latency;
        }
        return false;
      },
      [](const core::Problem& p, const SolveRequest& r) {
        const auto solution =
            r.objective == Objective::Period
                ? algorithms::multi_min_period_under_latency(
                      p, *r.constraints.latency)
                : algorithms::multi_min_latency_under_period(
                      p, *r.constraints.period);
        return from_solution(p, r.objective, solution);
      });

  // Theorem 23: one-to-one tri-criteria on fully homogeneous uni-modal
  // platforms — all one-to-one mappings are equivalent, so one evaluation
  // decides feasibility (and is optimal for every objective).
  add(registry,
      {.name = "one-to-one-tricriteria",
       .summary = "Thm 23: one-to-one tri-criteria feasibility, fully "
                  "homogeneous uni-modal platforms",
       .tier = CostTier::Polynomial,
       .rank = 30,
       .family = MappingKind::OneToOne,
       .exact = true},
      [](const core::Problem& p, const SolveRequest& r) {
        return r.kind == MappingKind::OneToOne && fully_homogeneous(p) &&
               uni_modal(p);
      },
      [](const core::Problem& p, const SolveRequest& r) {
        return from_solution(p, r.objective,
                             algorithms::one_to_one_tricriteria_feasible(
                                 p, r.constraints));
      });

  // Theorem 24: interval tri-criteria faces on fully homogeneous uni-modal
  // platforms (energy budget == enrolled-processor budget).
  add(registry,
      {.name = "tricriteria-unimodal",
       .summary = "Thm 24: interval tri-criteria faces, fully homogeneous "
                  "uni-modal platforms",
       .tier = CostTier::Polynomial,
       .rank = 40,
       .family = MappingKind::Interval,
       .exact = true},
      [](const core::Problem& p, const SolveRequest& r) {
        if (r.kind != MappingKind::Interval || !fully_homogeneous(p) ||
            !uni_modal(p)) {
          return false;
        }
        switch (r.objective) {
          case Objective::Period:
            return r.constraints.energy_budget.has_value() &&
                   !r.constraints.period;
          case Objective::Latency:
            return r.constraints.energy_budget.has_value() &&
                   !r.constraints.latency;
          case Objective::Energy:
            return !r.constraints.energy_budget &&
                   r.constraints.latency.has_value();
        }
        return false;
      },
      [](const core::Problem& p, const SolveRequest& r) {
        const std::size_t apps = p.application_count();
        std::optional<algorithms::Solution> solution;
        switch (r.objective) {
          case Objective::Period:
            solution = algorithms::interval_min_period_tricriteria(
                p, thresholds_or_unconstrained(r.constraints.latency, apps),
                *r.constraints.energy_budget);
            break;
          case Objective::Latency:
            solution = algorithms::interval_min_latency_tricriteria(
                p, thresholds_or_unconstrained(r.constraints.period, apps),
                *r.constraints.energy_budget);
            break;
          case Objective::Energy:
            solution = algorithms::interval_min_energy_tricriteria(
                p, thresholds_or_unconstrained(r.constraints.period, apps),
                thresholds_or_unconstrained(r.constraints.latency, apps));
            break;
        }
        return from_solution(p, r.objective, solution);
      });
}

}  // namespace pipeopt::api
