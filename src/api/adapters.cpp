#include "api/adapters.hpp"

#include "core/evaluation.hpp"
#include "util/numeric.hpp"

namespace pipeopt::api {

void register_all_solvers(SolverRegistry& registry) {
  register_polynomial_solvers(registry);
  register_exact_solvers(registry);
  register_heuristic_solvers(registry);
}

namespace detail {

double objective_value(Objective objective, const core::Metrics& metrics) {
  switch (objective) {
    case Objective::Period: return metrics.max_weighted_period;
    case Objective::Latency: return metrics.max_weighted_latency;
    case Objective::Energy: return metrics.energy;
  }
  return 0.0;
}

SolveResult solved(const core::Problem& problem, Objective objective,
                   core::Mapping mapping, bool optimal) {
  SolveResult result;
  result.metrics = core::evaluate(problem, mapping);
  result.value = objective_value(objective, result.metrics);
  result.mapping = std::move(mapping);
  result.status = optimal ? SolveStatus::Optimal : SolveStatus::Feasible;
  return result;
}

SolveResult infeasible() {
  SolveResult result;
  result.status = SolveStatus::Infeasible;
  result.value = util::kInfinity;
  return result;
}

SolveResult cancelled(const char* where) {
  SolveResult result = infeasible();
  result.status = SolveStatus::LimitExceeded;
  result.diagnostics.emplace_back("cancelled", where);
  return result;
}

bool no_constraints(const core::ConstraintSet& cs) {
  return !cs.period && !cs.latency && !cs.energy_budget;
}

bool only_period_bounds(const core::ConstraintSet& cs) {
  return cs.period.has_value() && !cs.latency && !cs.energy_budget;
}

core::Thresholds thresholds_or_unconstrained(
    const std::optional<core::Thresholds>& thresholds, std::size_t apps) {
  return thresholds ? *thresholds : core::Thresholds::unconstrained(apps);
}

}  // namespace detail

}  // namespace pipeopt::api
