#include "api/plan.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "api/adapters.hpp"
#include "api/registry.hpp"
#include "api/solver.hpp"
#include "obs/trace.hpp"
#include "util/numeric.hpp"
#include "util/timing.hpp"

namespace pipeopt::api {

namespace {

constexpr double kInf = util::kInfinity;

SolveResult no_solver(std::string reason) {
  SolveResult result;
  result.status = SolveStatus::NoSolver;
  result.value = kInf;
  result.diagnostics.emplace_back("reason", std::move(reason));
  return result;
}

/// Typed result of a cancellation observed by the plan itself (before or
/// between candidates); solvers interrupted mid-run produce their own.
SolveResult cancelled_result() {
  return detail::cancelled("cancel token fired");
}

/// Per-application thresholds must match the instance; a mismatched request
/// is a caller error reported as a typed status, not an exception.
bool thresholds_match(const core::ConstraintSet& cs, std::size_t apps) {
  if (cs.period && cs.period->size() != apps) return false;
  if (cs.latency && cs.latency->size() != apps) return false;
  return true;
}

/// Rebuilds an application with a new weight (Application is immutable).
core::Application with_weight(const core::Application& app, double weight) {
  return core::Application(
      app.boundary_size(0),
      std::vector<core::StageSpec>(app.stages().begin(), app.stages().end()),
      weight, app.name());
}

}  // namespace

DispatchPlan::DispatchPlan(const SolverRegistry& registry, SolveRequest request)
    : registry_(&registry), request_(std::move(request)) {
  if (request_.solver) {
    forced_ = registry.find(*request_.solver);
    forced_unknown_ = forced_ == nullptr;
  } else {
    ordered_ = registry.solvers();
  }
}

SolvePlan::SolvePlan(const DispatchPlan& dispatch, const core::Problem& problem)
    : request_(dispatch.request_), view_(&problem) {
  // The bind phase span covers everything below — threshold validation,
  // Eq. 6 weight resolution (stretch solo solves included) and capability
  // filtering. Solo solves run with a null trace of their own, so their
  // inner bind/solve time lands here, not as nested phases.
  const obs::SpanTimer bind_span(request_.trace, "bind");
  if (!thresholds_match(request_.constraints, problem.application_count())) {
    failure_ = no_solver("expected constraint thresholds sized for " +
                         std::to_string(problem.application_count()) +
                         " applications");
    return;
  }

  // Eq. 6 weight resolution, done exactly once per plan. Energy is
  // unweighted (§3.5) and Priority keeps the applications' stored weights,
  // so both keep the caller's problem by reference — no copy; Unit and
  // Stretch rebuild the applications with resolved W_a.
  const bool fast_path = request_.weights == core::WeightPolicy::Priority ||
                         request_.objective == Objective::Energy;
  if (!fast_path) {
    std::vector<core::Application> apps;
    apps.reserve(problem.application_count());
    if (request_.weights == core::WeightPolicy::Unit) {
      for (const auto& app : problem.applications()) {
        apps.push_back(with_weight(app, 1.0));
      }
    } else {
      // Stretch: W_a = 1/X*_a where X*_a is a's solo optimum (§3.4). The
      // solo optima run through the registry itself so stretch works on
      // every platform class, not just cells with a closed-form solver.
      for (std::size_t a = 0; a < problem.application_count(); ++a) {
        core::Problem solo({with_weight(problem.application(a), 1.0)},
                           problem.platform(), problem.comm_model());
        SolveRequest solo_request;
        solo_request.objective = request_.objective;
        solo_request.kind = request_.kind;
        solo_request.weights = core::WeightPolicy::Unit;  // no further recursion
        solo_request.node_budget = request_.node_budget;
        solo_request.time_budget_seconds = request_.time_budget_seconds;
        solo_request.seed = request_.seed;
        solo_request.cancel = request_.cancel;
        solo_request.deadline_ms = request_.deadline_ms;
        const SolveResult solo_result =
            dispatch.registry_->solve(solo, solo_request);
        if (!solo_result.solved() || !(solo_result.value > 0.0)) {
          if (request_.cancel.cancelled() || solo_result.was_cancelled()) {
            // A token firing during a solo solve says nothing about
            // feasibility; keep the documented cancellation contract
            // (typed LimitExceeded, "cancelled" diagnostic, CLI exit 1).
            failure_ = cancelled_result();
            failure_->diagnostics.emplace_back(
                "stretch", "cancelled while solving application " +
                               std::to_string(a) + "'s solo optimum");
            return;
          }
          // An application that cannot be mapped even alone makes the whole
          // instance infeasible — keep that status so the CLI exit-code
          // contract (1 = infeasible, 2 = unusable request) holds.
          failure_ =
              no_solver("stretch weights: no solo optimum for application " +
                        std::to_string(a) + " (" +
                        to_string(solo_result.status) + ")");
          if (solo_result.status == SolveStatus::Infeasible) {
            failure_->status = SolveStatus::Infeasible;
          }
          return;
        }
        if (solo_result.status != SolveStatus::Optimal) {
          // On an NP-hard cell past its budget the solo value is a heuristic
          // upper bound, so W_a = 1/value underestimates the true stretch.
          notes_.emplace_back("stretch",
                              "solo value for application " +
                                  std::to_string(a) + " is " +
                                  to_string(solo_result.status) + " (" +
                                  solo_result.solver + "), not proved optimal");
        }
        apps.push_back(
            with_weight(problem.application(a), 1.0 / solo_result.value));
      }
    }
    owned_ = std::make_shared<const core::Problem>(
        std::move(apps), problem.platform(), problem.comm_model());
    view_ = owned_.get();
  }

  platform_class_ = view_->platform().classify();

  if (dispatch.forced_unknown_) {
    failure_ = no_solver("unknown solver: " + *request_.solver);
    return;
  }
  if (dispatch.forced_ != nullptr) {
    if (!dispatch.forced_->applicable(*view_, request_)) {
      failure_ = no_solver("solver " + *request_.solver +
                           " is not applicable to this request (platform "
                           "class, mapping kind or constraint shape mismatch)");
      return;
    }
    forced_ = dispatch.forced_;
    return;
  }
  // Capability filtering, done once: the auto-dispatch candidate list in
  // (tier, rank, name) order.
  for (const Solver* solver : dispatch.ordered_) {
    if (solver->applicable(*view_, request_)) candidates_.push_back(solver);
  }
}

SolveResult SolvePlan::execute() const { return execute(request_.cancel); }

SolveResult SolvePlan::execute(util::CancelToken cancel) const {
  return run(request_, std::move(cancel));
}

SolveResult SolvePlan::execute_for(const SolveRequest& sibling) const {
  return run(sibling, sibling.cancel);
}

SolveResult SolvePlan::run(const SolveRequest& planned,
                           util::CancelToken cancel) const {
  // The solve phase span: the solver ladder itself (deadline arming and
  // diagnostics stitching included, which cost nothing measurable).
  const obs::SpanTimer solve_span(planned.trace, "solve");
  const util::Stopwatch watch;
  // Arm the request's wall-clock deadline now: every execution of a reused
  // plan gets its own full window, folded into the token the solvers poll.
  if (planned.deadline_ms) {
    cancel = cancel.with_timeout(std::chrono::milliseconds(*planned.deadline_ms));
  }
  auto notes = notes_;
  const auto finish = [&](SolveResult r) {
    r.diagnostics.insert(r.diagnostics.end(), notes.begin(), notes.end());
    r.wall_seconds = watch.elapsed_seconds();
    return r;
  };
  // Planning failures carry the planning-time notes too (a stretch solo
  // may have accumulated caveats before the failure).
  if (failure_) return finish(*failure_);
  if (cancel.cancelled()) return finish(cancelled_result());

  // Solvers see the executed request (the plan's own, or an execute_for
  // sibling) with this execution's token spliced in.
  SolveRequest request = planned;
  request.cancel = std::move(cancel);

  if (forced_ != nullptr) {
    SolveResult result = forced_->run(*view_, request);
    result.solver = forced_->name();
    return finish(std::move(result));
  }

  SolveResult result;
  bool exact_budget_blown = false;
  for (const Solver* candidate : candidates_) {
    if (request.cancel.cancelled()) return finish(cancelled_result());
    if (exact_budget_blown && candidate->info().tier == CostTier::Exact) {
      // The exact engines share the node budget; once one exhausted it, a
      // broader search over the same space is guaranteed to as well.
      notes.emplace_back("skipped",
                         candidate->name() + ": exact node budget exhausted");
      continue;
    }
    result = candidate->run(*view_, request);
    result.solver = candidate->name();
    if (result.status == SolveStatus::LimitExceeded) {
      // Cancellation also surfaces as LimitExceeded — but it aborts the
      // whole solve rather than degrading to the next tier.
      if (request.cancel.cancelled()) return finish(std::move(result));
      // Degrade to the next tier (e.g. exact search out of budget falls
      // through to the heuristic ladder); remember why.
      notes.emplace_back("skipped", candidate->name() + ": budget exhausted");
      if (candidate->info().tier == CostTier::Exact) exact_budget_blown = true;
      continue;
    }
    return finish(std::move(result));
  }
  if (result.status != SolveStatus::LimitExceeded) {
    result = no_solver("no registered solver matches this request");
  }
  return finish(std::move(result));
}

}  // namespace pipeopt::api
