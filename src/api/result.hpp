#pragma once

/// \file result.hpp
/// The facade's output type. Every solver returns the same `SolveResult`:
/// a typed feasibility status (never an exception for an infeasible
/// request), the witness mapping with its full metrics, the achieved
/// objective value, the name of the solver that produced it, wall time, and
/// free-form solver diagnostics (node counts, heuristic rung values, ...).

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/evaluation.hpp"
#include "core/mapping.hpp"

namespace pipeopt::api {

/// Outcome classification of one solve.
enum class SolveStatus {
  Optimal,        ///< mapping present and proved optimal for the request
  Feasible,       ///< mapping present, constraints hold, no optimality proof
  Infeasible,     ///< no mapping satisfies the request (proof by an exact
                  ///< solver; heuristics report it with a caveat diagnostic)
  LimitExceeded,  ///< node/time budget exhausted before a conclusion
  NoSolver        ///< no registered solver can handle the request (or the
                  ///< forced solver is unknown / inapplicable)
};

[[nodiscard]] const char* to_string(SolveStatus s) noexcept;

/// Result of `SolverRegistry::solve` (or of one solver's `run`).
struct SolveResult {
  SolveStatus status = SolveStatus::NoSolver;

  /// Witness mapping; present iff status is Optimal or Feasible.
  std::optional<core::Mapping> mapping;

  /// Achieved objective value (weighted period/latency or total energy);
  /// +inf when no mapping was produced.
  double value = 0.0;

  /// Full evaluation of `mapping` (period, latency and energy at once, so
  /// callers can inspect the non-optimized criteria); default-constructed
  /// when no mapping was produced.
  core::Metrics metrics;

  /// Name of the solver that produced this result ("" when dispatch never
  /// reached a solver).
  std::string solver;

  /// Wall-clock time of the solve, including dispatch.
  double wall_seconds = 0.0;

  /// Solver-specific key/value diagnostics (search nodes, rung values,
  /// skipped candidates, ...). Keys are stable per solver; order preserved.
  std::vector<std::pair<std::string, std::string>> diagnostics;

  /// True when a mapping was produced (Optimal or Feasible).
  [[nodiscard]] bool solved() const noexcept {
    return status == SolveStatus::Optimal || status == SolveStatus::Feasible;
  }

  /// True for the typed cancellation outcome — LimitExceeded carrying the
  /// "cancelled" diagnostic (a fired token or an expired deadline; the
  /// deadline arms on a token copy inside execute, so the caller's own
  /// token may never report it). The one predicate the plan, the sweep
  /// driver and the server stats all share.
  [[nodiscard]] bool was_cancelled() const noexcept {
    if (status != SolveStatus::LimitExceeded) return false;
    for (const auto& [key, value] : diagnostics) {
      if (key == "cancelled") return true;
    }
    return false;
  }

  [[nodiscard]] const char* status_name() const noexcept {
    return to_string(status);
  }
};

}  // namespace pipeopt::api
