#pragma once

/// \file solver.hpp
/// The solver interface behind the facade. A `Solver` couples three things:
///
///  * identity and cost metadata (`SolverInfo`) — name, one-line summary,
///    cost tier and in-tier rank, which mapping family it searches, and
///    whether it proves optimality;
///  * a capability predicate (`applicable`) — the Tables-1/2 cell shape the
///    algorithm is proved correct for (platform class, mapping kind,
///    objective, constraint shape);
///  * the solve itself (`run`), which must return a typed `SolveResult` and
///    never throw for an infeasible request.
///
/// `SolverRegistry::solve` dispatches to the cheapest applicable solver in
/// (tier, rank) order, so polynomial paper algorithms always outrank exact
/// enumeration, which outranks the heuristic ladder.

#include <optional>
#include <string>

#include "api/request.hpp"
#include "api/result.hpp"
#include "core/problem.hpp"

namespace pipeopt::api {

/// Dispatch cost classes, cheapest first. Auto-dispatch tries every
/// applicable Polynomial solver before any Exact one, and Exact before
/// Heuristic (the NP-hard-cell degradation path).
enum class CostTier {
  Polynomial,  ///< the paper's poly-time optimal algorithms (Thms 1-24)
  Exact,       ///< exponential search (enumeration, branch-and-bound)
  Heuristic    ///< constructive + local-search ladder (no optimality proof)
};

[[nodiscard]] const char* to_string(CostTier t) noexcept;

/// Static description of one solver.
struct SolverInfo {
  std::string name;      ///< unique registry key, e.g. "interval-period-dp"
  std::string summary;   ///< one line for `pipeopt list-solvers`
  CostTier tier = CostTier::Polynomial;
  int rank = 0;          ///< dispatch order within the tier (lower first)
  /// Mapping space the solver searches; nullopt when it follows the
  /// request's kind (exact search and the generic heuristics do).
  std::optional<MappingKind> family;
  bool exact = true;     ///< true when results carry an optimality proof
};

/// Abstract solver. Implementations adapt the existing entry points in
/// src/algorithms/, src/exact/ and src/heuristics/ without changing their
/// math; see src/api/adapters_*.cpp.
class Solver {
 public:
  virtual ~Solver() = default;

  [[nodiscard]] const SolverInfo& info() const noexcept { return info_; }
  [[nodiscard]] const std::string& name() const noexcept { return info_.name; }

  /// True when this solver is proved correct for (problem, request): the
  /// platform class, mapping kind, objective and constraint shape all match
  /// its cell. `run` may only be called when this holds.
  ///
  /// Contract: applicability may depend on the constraint *shape* (which
  /// slots are set, threshold sizes) but never on the bound *values*. That
  /// invariant is what lets `SolvePlan::execute_for` reuse one bind-time
  /// candidate list across a whole sweep, whose grid points differ only in
  /// the swept bound's value.
  [[nodiscard]] virtual bool applicable(const core::Problem& problem,
                                        const SolveRequest& request) const = 0;

  /// Solves the request. Must return a typed status — in particular
  /// Infeasible rather than throwing — and fill mapping/value/metrics when
  /// a mapping is produced. The registry stamps solver name and wall time.
  [[nodiscard]] virtual SolveResult run(const core::Problem& problem,
                                        const SolveRequest& request) const = 0;

 protected:
  explicit Solver(SolverInfo info) : info_(std::move(info)) {}

 private:
  SolverInfo info_;
};

}  // namespace pipeopt::api
