#include "api/executor.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "obs/trace.hpp"
#include "util/timing.hpp"

namespace pipeopt::api {

namespace {

std::size_t resolve_jobs(std::size_t requested) {
  if (requested > 0) return requested;
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

/// Records the enqueue→pickup gap as the request's `queue_wait` span.
/// Called by the job itself on the worker thread; a null trace costs one
/// branch (the enqueue timestamp is only taken for traced requests).
void record_queue_wait(obs::TraceContext* trace,
                       std::chrono::steady_clock::time_point enqueued) {
  if (trace == nullptr) return;
  const auto waited = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - enqueued);
  trace->record("queue_wait", static_cast<std::uint64_t>(waited.count()));
}

std::chrono::steady_clock::time_point enqueue_stamp(
    const obs::TraceContext* trace) {
  return trace != nullptr ? std::chrono::steady_clock::now()
                          : std::chrono::steady_clock::time_point{};
}

}  // namespace

Executor::Executor(ExecutorOptions options)
    : Executor(default_registry(), options) {}

Executor::Executor(const SolverRegistry& registry, ExecutorOptions options)
    : registry_(&registry) {
  if (options.cache_entries > 0) {
    cache_ = std::make_unique<SolveCache>(options.cache_entries);
  }
  const std::size_t jobs = resolve_jobs(options.jobs);
  workers_.reserve(jobs);
  for (std::size_t i = 0; i < jobs; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Executor::~Executor() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::size_t Executor::pending() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size() + in_flight_;
}

void Executor::worker_loop() {
  for (;;) {
    std::packaged_task<SolveResult()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      // Drain-on-shutdown: accepted jobs still run so their futures are
      // always satisfied; only an empty queue ends the worker.
      if (queue_.empty()) return;
      job = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    job();  // packaged_task captures exceptions into the future
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
    }
  }
}

std::future<SolveResult> Executor::enqueue(
    std::packaged_task<SolveResult()> job) {
  std::future<SolveResult> future = job.get_future();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(job));
  }
  ready_.notify_one();
  return future;
}

bool Executor::cache_usable(const SolveRequest& request) const {
  // An already-fired token keeps the cold semantics (the plan returns the
  // typed cancelled result) by bypassing the cache entirely.
  return cache_ != nullptr && SolveCache::cacheable(request) &&
         !request.cancel.cancelled();
}

void Executor::cache_store(const std::string& key, const SolveRequest& request,
                           const SolveResult& result) {
  // A result that observed a fired token mid-run is wall-clock noise, not
  // a function of the key bytes — never store it.
  if (!result.was_cancelled() && !request.cancel.cancelled()) {
    cache_->insert(key, result);
  }
}

std::future<SolveResult> Executor::solve_async(core::Problem problem,
                                               SolveRequest request) {
  obs::TraceContext* const trace = request.trace;
  // Cache fast path: a hit answers synchronously with the stored result —
  // no pool round trip, no solve.
  if (cache_usable(request)) {
    std::string key;
    std::optional<SolveResult> hit;
    {
      const obs::SpanTimer span(trace, "cache_lookup");
      key = SolveCache::key(problem, request);
      hit = cache_->lookup(key);
    }
    if (hit) {
      std::promise<SolveResult> ready;
      ready.set_value(std::move(*hit));
      return ready.get_future();
    }
    return enqueue(std::packaged_task<SolveResult()>(
        [this, problem = std::move(problem), request = std::move(request),
         key = std::move(key), trace, enqueued = enqueue_stamp(trace)] {
          record_queue_wait(trace, enqueued);
          SolveResult result = registry_->solve(problem, request);
          cache_store(key, request, result);
          return result;
        }));
  }
  return enqueue(std::packaged_task<SolveResult()>(
      [registry = registry_, problem = std::move(problem),
       request = std::move(request), trace, enqueued = enqueue_stamp(trace)] {
        record_queue_wait(trace, enqueued);
        return registry->solve(problem, request);
      }));
}

BatchResult Executor::solve_batch(std::span<const core::Problem> problems,
                                  const SolveRequest& request) {
  const util::Stopwatch watch;
  BatchResult batch;
  // The whole batch shares one request-level dispatch plan; each instance
  // only binds (weights, applicability) and executes on the pool. Shared
  // ownership keeps the plan alive until the last worker is done.
  const auto dispatch =
      std::make_shared<const DispatchPlan>(registry_->plan_request(request));
  batch.dispatch_plans = 1;

  // One cacheability decision serves the whole batch (the request is
  // shared); keys still differ per instance.
  const bool use_cache = cache_usable(request);
  std::vector<std::future<SolveResult>> futures;
  futures.reserve(problems.size());
  for (const core::Problem& problem : problems) {
    if (use_cache) {
      std::string key = SolveCache::key(problem, request);
      if (std::optional<SolveResult> hit = cache_->lookup(key)) {
        std::promise<SolveResult> ready;
        ready.set_value(std::move(*hit));
        futures.push_back(ready.get_future());
        continue;
      }
      futures.push_back(enqueue(std::packaged_task<SolveResult()>(
          [this, dispatch, &request, &problem, key = std::move(key)] {
            SolveResult result = dispatch->bind(problem).execute();
            cache_store(key, request, result);
            return result;
          })));
      continue;
    }
    futures.push_back(enqueue(std::packaged_task<SolveResult()>(
        [dispatch, &problem] { return dispatch->bind(problem).execute(); })));
  }
  batch.results.reserve(futures.size());
  for (auto& future : futures) batch.results.push_back(future.get());
  batch.wall_seconds = watch.elapsed_seconds();
  return batch;
}

SolveResult Executor::execute_point(const SolvePlan& plan,
                                    const core::Problem& problem,
                                    const SolveRequest& point) {
  if (!cache_usable(point)) return plan.execute_for(point);
  std::string key;
  std::optional<SolveResult> hit;
  {
    const obs::SpanTimer span(point.trace, "cache_lookup");
    key = SolveCache::key(problem, point);
    hit = cache_->lookup(key);
  }
  if (hit) return *hit;
  const SolveResult result = plan.execute_for(point);
  cache_store(key, point, result);
  return result;
}

ParetoFront Executor::sweep(const core::Problem& problem,
                            const SweepRequest& request) {
  // The shared driver builds one SolvePlan per sweep and supplies each
  // round's per-point requests; this round evaluator is the only
  // difference from the sequential api::sweep — one pool job per bound,
  // futures gathered back in bound order, each executing through the same
  // sweep-shared plan (cache-aware when the executor has one).
  return detail::run_sweep(
      *registry_, problem, request,
      [this, &problem](const SolvePlan& plan,
                       std::vector<SolveRequest> requests) {
        std::vector<std::future<SolveResult>> futures;
        futures.reserve(requests.size());
        for (SolveRequest& point : requests) {
          obs::TraceContext* const trace = point.trace;
          futures.push_back(enqueue(std::packaged_task<SolveResult()>(
              [this, &plan, &problem, point = std::move(point), trace,
               enqueued = enqueue_stamp(trace)] {
                record_queue_wait(trace, enqueued);
                return execute_point(plan, problem, point);
              })));
        }
        std::vector<SolveResult> results;
        results.reserve(futures.size());
        for (auto& future : futures) results.push_back(future.get());
        return results;
      });
}

Executor& default_executor() {
  static Executor executor{ExecutorOptions{}};
  return executor;
}

std::future<SolveResult> solve_async(core::Problem problem,
                                     SolveRequest request) {
  return default_executor().solve_async(std::move(problem), std::move(request));
}

BatchResult solve_batch(std::span<const core::Problem> problems,
                        const SolveRequest& request) {
  return default_executor().solve_batch(problems, request);
}

}  // namespace pipeopt::api
