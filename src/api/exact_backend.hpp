#pragma once

/// \file exact_backend.hpp
/// The exact-backend seam: one interface every engine that claims *proven
/// optimality* implements, so the facade can treat "which exact algorithm"
/// as a pluggable choice and the test tree can cross-check any two backends
/// against each other (tests/exact/backend_crosscheck_test.cpp).
///
/// A backend is smaller than a `Solver`: it only maps (problem, request) to
/// an `exact::ExactResult` — no SolveResult conversion, no diagnostics, no
/// status codes. `register_exact_solvers` (api/adapters_exact.cpp) wraps
/// every registered backend in the uniform adapter that handles budget
/// exhaustion, cancellation and result conversion once, identically for all
/// of them. That keeps the engines' contracts pure — value + mapping or
/// nullopt, throw on budget/cancel — which is exactly the shape a
/// differential harness can compare.
///
/// Built-in backends (always present, dispatch-rank order):
///   branch-and-bound   rank 0   pruned period search (warm-start aware)
///   exact-enumeration  rank 10  exhaustive oracle, any objective/constraints
///   mip-branch-cut     rank 20  independent MIP formulation over an LP
///                               relaxation (exact/mip/) — the structurally
///                               independent oracle
/// Optional backends appear when compiled in (`PIPEOPT_WITH_ORTOOLS` adds
/// ortools-cpsat at rank 30). Ranks above 10 are never auto-dispatched —
/// exact-enumeration accepts every request first — so adding a backend
/// never changes which solver an unforced request runs; they are reached
/// via `SolveRequest::solver` forcing (CLI: `solve --solver <name>`).

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "api/request.hpp"
#include "core/problem.hpp"
#include "exact/exact_solvers.hpp"

namespace pipeopt::api {

/// Identity and dispatch placement of one exact backend.
struct ExactBackendInfo {
  std::string name;     ///< registry solver name ("mip-branch-cut", ...)
  std::string summary;  ///< one-line description for list-solvers
  int rank = 0;         ///< dispatch rank within CostTier::Exact
  /// True when the backend returns the bit-exact optimum of
  /// `core::evaluate` arithmetic. Backends that solve a scaled or rounded
  /// model (e.g. CP-SAT's integer arithmetic) set this false, and the
  /// cross-check harness compares them within tolerance instead of by bits.
  bool bit_exact = true;
};

/// One exact engine behind the seam. Implementations must be stateless
/// across calls (a backend is shared by every registry and test).
class ExactBackend {
 public:
  explicit ExactBackend(ExactBackendInfo info) : info_(std::move(info)) {}
  virtual ~ExactBackend() = default;

  ExactBackend(const ExactBackend&) = delete;
  ExactBackend& operator=(const ExactBackend&) = delete;

  [[nodiscard]] const ExactBackendInfo& info() const noexcept { return info_; }

  /// Shape-only capability predicate (same contract as Solver::applicable):
  /// may inspect objective/constraints/kind, never solve anything.
  [[nodiscard]] virtual bool supports(const core::Problem& problem,
                                      const SolveRequest& request) const = 0;

  /// Solves to proven optimality. Returns std::nullopt when no feasible
  /// mapping exists. The returned mapping must re-evaluate (via
  /// `core::evaluate`) to `value` for bit-exact backends.
  /// \throws exact::SearchLimitExceeded past request.node_budget,
  ///         exact::SearchCancelled on a fired cancel token.
  [[nodiscard]] virtual std::optional<exact::ExactResult> minimize(
      const core::Problem& problem, const SolveRequest& request) const = 0;

 private:
  ExactBackendInfo info_;
};

/// All registered exact backends in rank order. The list is built once at
/// first use and is immutable afterwards; pointers stay valid for the
/// process lifetime.
[[nodiscard]] const std::vector<const ExactBackend*>& exact_backends();

/// Backend by registry name, or nullptr.
[[nodiscard]] const ExactBackend* find_exact_backend(std::string_view name);

namespace detail {
/// Defined in backends_ortools.cpp: the CP-SAT backend when the build has
/// OR-tools (`PIPEOPT_WITH_ORTOOLS`), nullptr otherwise — so the registry
/// code links identically either way.
[[nodiscard]] std::unique_ptr<ExactBackend> make_ortools_backend();
}  // namespace detail

}  // namespace pipeopt::api
