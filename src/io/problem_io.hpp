#pragma once

/// \file problem_io.hpp
/// Plain-text problem format, so instances can be written by hand, checked
/// into repositories and fed to the CLI tool. Line-oriented:
///
/// ```text
/// # the paper's §2 example
/// comm overlap              # or no-overlap (default overlap)
/// alpha 2                   # energy exponent (default 2)
/// bandwidth 1               # uniform link bandwidth
/// processor P1 static=0 speeds=3,6
/// processor P2 static=0 speeds=6,8
/// processor P3 static=0 speeds=1,6
/// app App1 weight=1 input=1 stages=3:3,2:2,1:0    # stages = w:delta,...
/// app App2 weight=1 input=0 stages=2:2,6:1,4:1,2:1
/// ```
///
/// Fully heterogeneous platforms replace the single `bandwidth` line with
/// explicit per-link rows (0-based indices in declaration order; exactly
/// one of the two styles per instance):
///
/// ```text
/// link 0 1,2.5,4            # row u of the symmetric p×p matrix
/// input 0 1,1,0.5           # app a's source-to-P_u bandwidths (p values)
/// output 0 2,1,1            # app a's P_u-to-sink bandwidths (p values)
/// ```
///
/// All p `link` rows and all A `input`/`output` rows are then required.
/// Numbers are emitted by `format_problem` in shortest round-trip form, so
/// parse(format(problem)) reproduces the instance bit for bit — the
/// property the pipeopt-server wire format builds on. `parse_problem`
/// reports the offending line on error (io::ParseError, from json.hpp).

#include <iosfwd>
#include <string>
#include <vector>

#include "core/problem.hpp"
#include "io/json.hpp"

namespace pipeopt::io {

/// Parses the text format from a stream.
[[nodiscard]] core::Problem parse_problem(std::istream& in);

/// Parses from a string (convenience for tests).
[[nodiscard]] core::Problem parse_problem_string(const std::string& text);

/// Parses from a file. \throws std::runtime_error when unreadable.
[[nodiscard]] core::Problem load_problem(const std::string& path);

/// Parses a JSONL batch: one JSON object per line, blank lines skipped.
/// Each object names one instance, either by file or inline:
///
/// ```jsonl
/// {"path": "instances/grid_a.txt"}
/// {"problem": "comm overlap\nbandwidth 1\nprocessor P1 speeds=1\n..."}
/// ```
///
/// Relative "path" entries resolve against `base_dir` (the JSONL file's own
/// directory in `load_batch`). Only flat objects with string values are
/// accepted — this is the batch manifest format of `pipeopt solve-batch`,
/// not a general JSON parser. \throws ParseError naming the offending line.
[[nodiscard]] std::vector<core::Problem> parse_batch_jsonl(
    std::istream& in, const std::string& base_dir = {});

/// `parse_batch_jsonl` over a file. \throws std::runtime_error when
/// unreadable, ParseError on malformed content.
[[nodiscard]] std::vector<core::Problem> load_batch(const std::string& path);

/// Serializes a problem back to the text format, uniform-bandwidth or
/// fully heterogeneous alike; parse_problem(format_problem(p)) rebuilds the
/// identical instance (shortest round-trip number formatting).
[[nodiscard]] std::string format_problem(const core::Problem& problem);

}  // namespace pipeopt::io
