#pragma once

/// \file problem_io.hpp
/// Plain-text problem format, so instances can be written by hand, checked
/// into repositories and fed to the CLI tool. Line-oriented:
///
/// ```text
/// # the paper's §2 example
/// comm overlap              # or no-overlap (default overlap)
/// alpha 2                   # energy exponent (default 2)
/// bandwidth 1               # uniform link bandwidth (required)
/// processor P1 static=0 speeds=3,6
/// processor P2 static=0 speeds=6,8
/// processor P3 static=0 speeds=1,6
/// app App1 weight=1 input=1 stages=3:3,2:2,1:0    # stages = w:delta,...
/// app App2 weight=1 input=0 stages=2:2,6:1,4:1,2:1
/// ```
///
/// Only communication-homogeneous platforms are expressible (uniform
/// `bandwidth`); heterogeneous-link instances are constructed in code.
/// `parse_problem` reports the offending line on error.

#include <iosfwd>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/problem.hpp"

namespace pipeopt::io {

/// Thrown on malformed input; the message names the line number.
class ParseError : public std::runtime_error {
 public:
  ParseError(std::size_t line, const std::string& what)
      : std::runtime_error("line " + std::to_string(line) + ": " + what) {}
};

/// Parses the text format from a stream.
[[nodiscard]] core::Problem parse_problem(std::istream& in);

/// Parses from a string (convenience for tests).
[[nodiscard]] core::Problem parse_problem_string(const std::string& text);

/// Parses from a file. \throws std::runtime_error when unreadable.
[[nodiscard]] core::Problem load_problem(const std::string& path);

/// Parses a JSONL batch: one JSON object per line, blank lines skipped.
/// Each object names one instance, either by file or inline:
///
/// ```jsonl
/// {"path": "instances/grid_a.txt"}
/// {"problem": "comm overlap\nbandwidth 1\nprocessor P1 speeds=1\n..."}
/// ```
///
/// Relative "path" entries resolve against `base_dir` (the JSONL file's own
/// directory in `load_batch`). Only flat objects with string values are
/// accepted — this is the batch manifest format of `pipeopt solve-batch`,
/// not a general JSON parser. \throws ParseError naming the offending line.
[[nodiscard]] std::vector<core::Problem> parse_batch_jsonl(
    std::istream& in, const std::string& base_dir = {});

/// `parse_batch_jsonl` over a file. \throws std::runtime_error when
/// unreadable, ParseError on malformed content.
[[nodiscard]] std::vector<core::Problem> load_batch(const std::string& path);

/// Serializes a problem back to the text format (round-trips through
/// parse_problem for comm-homogeneous platforms).
[[nodiscard]] std::string format_problem(const core::Problem& problem);

}  // namespace pipeopt::io
