#include "io/stats_io.hpp"

#include <cstdint>
#include <utility>

namespace pipeopt::io {

JsonFields merge_stats_fields(const std::vector<JsonFields>& lines,
                              std::size_t line_no) {
  // Sums keep first-appearance order: counters every shard reports stay in
  // the familiar server order, per-shard extras (solver.*, cache_*) join
  // the tail as they first show up.
  std::vector<std::pair<std::string, std::uint64_t>> sums;
  for (const JsonFields& fields : lines) {
    for (const auto& [key, value] : fields) {
      if (key == "type" || key == "id") continue;
      const std::uint64_t count =
          parse_wire_number<std::uint64_t>(key, value, line_no);
      bool found = false;
      for (auto& [name, sum] : sums) {
        if (name == key) {
          sum += count;
          found = true;
          break;
        }
      }
      if (!found) sums.emplace_back(key, count);
    }
  }
  JsonFields merged;
  merged.reserve(sums.size());
  for (const auto& [name, sum] : sums) {
    merged.emplace_back(name, std::to_string(sum));
  }
  return merged;
}

JsonFields merge_stats_lines(const std::vector<std::string>& lines) {
  std::vector<JsonFields> parsed;
  parsed.reserve(lines.size());
  for (std::size_t i = 0; i < lines.size(); ++i) {
    parsed.push_back(parse_flat_json(lines[i], i + 1));
  }
  return merge_stats_fields(parsed);
}

std::string stats_field(const JsonFields& fields, const std::string& key) {
  for (const auto& [k, v] : fields) {
    if (k == key) return v;
  }
  return {};
}

}  // namespace pipeopt::io
