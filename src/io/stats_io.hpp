#pragma once

/// \file stats_io.hpp
/// Fleet-level aggregation of `{"type":"stats"}` response lines — the io
/// half of the router's stats fan-out. A router asks every shard for its
/// counters and answers the client with one merged line; this header owns
/// the merge semantics so the router, its tests and any future fleet tool
/// agree on them:
///
///  * every field is summed across the lines it appears in (all server
///    stats values are decimal counters — `requests`, `solves`,
///    `solver.<name>`, `jobs`, `pending`, the cache counters, ...);
///  * `type` and `id` are framing, not counters, and are skipped;
///  * field order is first-appearance order across the input lines, so a
///    shard fleet with disjoint `solver.*` sets merges into their union
///    and fields no shard reports (e.g. `cache_*` when every shard runs
///    cache-off) stay absent — presence itself is information;
///  * a non-numeric value is malformed input and throws ParseError.

#include <cstddef>
#include <string>
#include <vector>

#include "io/json.hpp"

namespace pipeopt::io {

/// Merges the ordered fields of several stats lines field-wise (see the
/// file comment for the exact semantics). An empty input merges to an
/// empty field list. \throws ParseError (naming `line_no`) on a
/// non-numeric counter value.
[[nodiscard]] JsonFields merge_stats_fields(
    const std::vector<JsonFields>& lines, std::size_t line_no = 1);

/// Convenience over raw response lines: `parse_flat_json` each, then
/// `merge_stats_fields`.
[[nodiscard]] JsonFields merge_stats_lines(
    const std::vector<std::string>& lines);

/// The value of `key` in `fields`, or "" when absent — the lookup every
/// stats consumer (tests, ci polling, the router) repeats.
[[nodiscard]] std::string stats_field(const JsonFields& fields,
                                      const std::string& key);

}  // namespace pipeopt::io
