#pragma once

/// \file request_io.hpp
/// Wire form of one solve or sweep request — the request side of the
/// pipeopt-server protocol (documented end to end in docs/PROTOCOL.md),
/// shared by the CLI `client`/`pareto` subcommands and the tests. One flat
/// JSON object per line (json.hpp dialect, every value a string):
///
/// ```json
/// {"type":"solve","objective":"energy","kind":"interval",
///  "weights":"unit","solver":"branch-and-bound",
///  "period_bounds":"2,2","latency_bounds":"5,5","energy_budget":"10",
///  "node_budget":"1000000","time_budget_s":"1.5","seed":"7",
///  "deadline_ms":"500","id":"42","problem":"comm overlap\n..."}
/// ```
///
/// `problem` carries the instance inline in the text format of
/// problem_io.hpp (lossless for every platform class); `path` loads it
/// from a file instead — exactly one of the two. Every other field is
/// optional and defaults to the corresponding `SolveRequest` default;
/// bounds are comma lists with either one value (replicated per
/// application, like the CLI) or one value per application. `id` is an
/// opaque client tag the server echoes into the matching result line.
///
/// A Pareto-front sweep travels as `{"type":"pareto", ...}` with the same
/// shared fields plus `sweep` (the bounded criterion walked by the grid,
/// default "period"), `sweep_bounds` (the comma-separated grid, required)
/// and `refine` (adaptive refinement rounds); `objective` defaults to
/// "energy" for sweeps, and `deadline_ms` bounds the whole sweep.
///
/// `parse_solve_request(format_solve_request(problem, request))` rebuilds
/// both the instance and the request bit for bit (shortest round-trip
/// number formatting) — the foundation of the server's bit-identity
/// guarantee; the pareto pair round-trips the same way. Malformed input
/// throws io::ParseError; the server maps that to a structured
/// `{"type":"error",...}` line instead of dying.

#include <cstddef>
#include <string>

#include "api/request.hpp"
#include "api/sweep.hpp"
#include "core/problem.hpp"
#include "io/json.hpp"

namespace pipeopt::io {

/// One decoded wire request: the instance, the facade request, and the
/// client's correlation id ("" when absent).
struct WireSolveRequest {
  core::Problem problem;
  api::SolveRequest request;
  std::string id;
};

/// Decodes already-parsed fields (the server parses the line once to read
/// "type", then hands the fields over). Relative "path" values resolve
/// against `base_dir`. \throws ParseError naming `line_no`.
[[nodiscard]] WireSolveRequest parse_solve_request(
    const JsonFields& fields, std::size_t line_no = 1,
    const std::string& base_dir = {});

/// `parse_flat_json` + `parse_solve_request`.
[[nodiscard]] WireSolveRequest parse_solve_request_line(
    const std::string& line, std::size_t line_no = 1,
    const std::string& base_dir = {});

/// One request as a single JSONL line (no trailing newline), instance
/// inline. Fields equal to the SolveRequest defaults are omitted; the
/// cancel token does not travel (arm deadlines via `deadline_ms`).
[[nodiscard]] std::string format_solve_request(
    const core::Problem& problem, const api::SolveRequest& request,
    const std::string& id = {});

/// Canonical cache-key bytes of one (problem, request) pair: the solve
/// fields of `format_solve_request` (same omit-defaults rules, including
/// `warm_start`) followed by the canonical instance text — no "type", no
/// "id". Two requests that differ only in wire presentation (field order,
/// a replicated bound vs the explicit per-application list, instance-text
/// comments/whitespace) produce identical keys; anything that can change
/// the solve result produces different ones. This is the key
/// `api::SolveCache` shards on. The cancel token is deliberately excluded:
/// cacheability of token-bearing requests is the cache's policy, not the
/// key's.
[[nodiscard]] std::string format_solve_key(const core::Problem& problem,
                                           const api::SolveRequest& request);

/// One decoded `{"type":"pareto"}` wire request: the instance, the facade
/// sweep request, and the client's correlation id ("" when absent).
struct WireParetoRequest {
  core::Problem problem;
  api::SweepRequest request;
  std::string id;
};

/// Decodes already-parsed fields of a pareto request line. The grid
/// (`sweep_bounds`) is required; semantic sweep validation (objective pair,
/// pre-constrained axis) stays in `api::validate_sweep`, which the server
/// and CLI run before dispatching. \throws ParseError naming `line_no`.
[[nodiscard]] WireParetoRequest parse_pareto_request(
    const JsonFields& fields, std::size_t line_no = 1,
    const std::string& base_dir = {});

/// `parse_flat_json` + `parse_pareto_request`.
[[nodiscard]] WireParetoRequest parse_pareto_request_line(
    const std::string& line, std::size_t line_no = 1,
    const std::string& base_dir = {});

/// One sweep request as a single JSONL line (no trailing newline),
/// instance inline; round-trips bit for bit through parse_pareto_request.
[[nodiscard]] std::string format_pareto_request(
    const core::Problem& problem, const api::SweepRequest& request,
    const std::string& id = {});

}  // namespace pipeopt::io
