#pragma once

/// \file result_io.hpp
/// Wire form of one solve result — the response side of the pipeopt-server
/// protocol, and the format of CLI `solve-batch --out` JSONL files, so the
/// batch path and the server share one result serialization. One flat JSON
/// object per line (json.hpp dialect):
///
/// ```json
/// {"type":"result","id":"42","status":"optimal","solver":"interval-period-dp",
///  "value":"2.5","mapping":"0:0-2@1/1;1:0-0@2/0",
///  "periods":"2.5,2","latencies":"4,3","weighted_period":"2.5",
///  "weighted_latency":"4","energy":"12","wall_s":"0.0012",
///  "diag.nodes":"123"}
/// ```
///
/// The mapping travels as `app:first-last@proc/mode` interval terms joined
/// by ';'. `mapping` and the metrics fields appear only when the solve
/// produced a mapping; diagnostics keep their order under `diag.`-prefixed
/// keys. Numbers are shortest-round-trip (json.hpp), so
/// `parse_result(format_result(r))` reproduces the result bit for bit —
/// except `wall_s`, which is honest wall time and can be omitted
/// (`include_wall = false`) when lines are compared across runs.

#include <cstddef>
#include <string>

#include "api/result.hpp"
#include "core/mapping.hpp"
#include "io/json.hpp"

namespace pipeopt::io {

/// One decoded wire result with its correlation id ("" when absent).
struct WireResult {
  api::SolveResult result;
  std::string id;
};

/// One result as a single JSONL line (no trailing newline).
[[nodiscard]] std::string format_result(const api::SolveResult& result,
                                        const std::string& id = {},
                                        bool include_wall = true);

/// Decodes already-parsed fields. \throws ParseError naming `line_no`.
[[nodiscard]] WireResult parse_result(const JsonFields& fields,
                                      std::size_t line_no = 1);

/// `parse_flat_json` + `parse_result`.
[[nodiscard]] WireResult parse_result_line(const std::string& line,
                                           std::size_t line_no = 1);

/// Mapping wire form: interval terms `app:first-last@proc/mode` joined by
/// ';' ("0:0-2@1/1;1:0-0@2/0").
[[nodiscard]] std::string format_mapping(const core::Mapping& mapping);

/// Inverse of format_mapping. \throws ParseError on malformed text.
[[nodiscard]] core::Mapping parse_mapping(const std::string& text,
                                          std::size_t line_no = 1);

}  // namespace pipeopt::io
