#pragma once

/// \file result_io.hpp
/// Wire form of one solve result — the response side of the pipeopt-server
/// protocol, and the format of CLI `solve-batch --out` JSONL files, so the
/// batch path and the server share one result serialization. One flat JSON
/// object per line (json.hpp dialect):
///
/// ```json
/// {"type":"result","id":"42","status":"optimal","solver":"interval-period-dp",
///  "value":"2.5","mapping":"0:0-2@1/1;1:0-0@2/0",
///  "periods":"2.5,2","latencies":"4,3","weighted_period":"2.5",
///  "weighted_latency":"4","energy":"12","wall_s":"0.0012",
///  "diag.nodes":"123"}
/// ```
///
/// The mapping travels as `app:first-last@proc/mode` interval terms joined
/// by ';'. `mapping` and the metrics fields appear only when the solve
/// produced a mapping; diagnostics keep their order under `diag.`-prefixed
/// keys. Numbers are shortest-round-trip (json.hpp), so
/// `parse_result(format_result(r))` reproduces the result bit for bit —
/// except `wall_s`, which is honest wall time and can be omitted
/// (`include_wall = false`) when lines are compared across runs.
///
/// A `{"type":"pareto"}` exchange streams one such result line per front
/// point — identical except for one extra `"bound"` field (the swept-bound
/// value that produced the point), placed right after `id` — followed by a
/// terminal `{"type":"pareto"}` summary line (`format_pareto_summary`).
/// docs/PROTOCOL.md documents the full exchange.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

#include "api/result.hpp"
#include "api/sweep.hpp"
#include "core/mapping.hpp"
#include "io/json.hpp"

namespace pipeopt::io {

/// One decoded wire result with its correlation id ("" when absent).
struct WireResult {
  api::SolveResult result;
  std::string id;
  /// The swept-bound value, present only on pareto front-point lines.
  std::optional<double> bound;
};

/// One result as a single JSONL line (no trailing newline).
[[nodiscard]] std::string format_result(const api::SolveResult& result,
                                        const std::string& id = {},
                                        bool include_wall = true);

/// Decodes already-parsed fields. \throws ParseError naming `line_no`.
[[nodiscard]] WireResult parse_result(const JsonFields& fields,
                                      std::size_t line_no = 1);

/// `parse_flat_json` + `parse_result`.
[[nodiscard]] WireResult parse_result_line(const std::string& line,
                                           std::size_t line_no = 1);

/// Mapping wire form: interval terms `app:first-last@proc/mode` joined by
/// ';' ("0:0-2@1/1;1:0-0@2/0").
[[nodiscard]] std::string format_mapping(const core::Mapping& mapping);

/// Inverse of format_mapping. \throws ParseError on malformed text.
[[nodiscard]] core::Mapping parse_mapping(const std::string& text,
                                          std::size_t line_no = 1);

/// One pareto front point as a result line with its producing `bound`
/// value; decoded by `parse_result` (WireResult::bound set).
[[nodiscard]] std::string format_front_point(const api::SolveResult& result,
                                             double bound,
                                             const std::string& id = {},
                                             bool include_wall = true);

/// Decoded terminal line of one pareto exchange.
struct WireParetoSummary {
  std::string id;
  /// False when the sweep was cut short (deadline, cancel or disconnect)
  /// and the streamed front covers only the evaluated prefix.
  bool complete = true;
  std::uint64_t points = 0;            ///< front points streamed
  std::uint64_t evaluated = 0;         ///< grid points solved or attempted
  std::uint64_t infeasible = 0;        ///< grid points proved infeasible
  std::uint64_t cancelled_points = 0;  ///< grid points lost to cancellation
  double wall_seconds = 0.0;
};

/// The `{"type":"pareto","status":...}` summary line closing one streamed
/// front; counts taken from the sweep result. `include_wall` as above.
[[nodiscard]] std::string format_pareto_summary(const api::ParetoFront& front,
                                                const std::string& id = {},
                                                bool include_wall = true);

/// Decodes already-parsed summary fields. \throws ParseError naming `line_no`.
[[nodiscard]] WireParetoSummary parse_pareto_summary(const JsonFields& fields,
                                                     std::size_t line_no = 1);

/// `parse_flat_json` + `parse_pareto_summary`.
[[nodiscard]] WireParetoSummary parse_pareto_summary_line(
    const std::string& line, std::size_t line_no = 1);

/// One structured `{"type":"error",...}` response line — the shared error
/// serialization of the server and the router, so their bytes cannot
/// drift. Field order: type, id (omitted when empty), code (omitted when
/// empty — the server's parse/validation errors carry none; the router's
/// typed failures use "overloaded", "unavailable" and "shard-lost"),
/// message.
[[nodiscard]] std::string format_error(const std::string& message,
                                       const std::string& id = {},
                                       const std::string& code = {});

}  // namespace pipeopt::io
