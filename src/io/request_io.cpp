#include "io/request_io.hpp"

#include <optional>
#include <utility>
#include <vector>

#include "io/problem_io.hpp"

namespace pipeopt::io {
namespace {

/// "v" or "v1,v2,...": one value replicates per application, otherwise the
/// count must match — the same semantics as the CLI's --*-bounds flags.
core::Thresholds wire_bounds(const std::string& key, const std::string& value,
                             std::size_t apps, std::size_t line_no) {
  std::vector<double> bounds = parse_wire_list(key, value, line_no);
  if (bounds.size() == 1) bounds.assign(apps, bounds.front());
  if (bounds.size() != apps) {
    throw ParseError(line_no, "\"" + key + "\" needs 1 or " +
                                  std::to_string(apps) + " values, got " +
                                  std::to_string(bounds.size()));
  }
  return core::Thresholds::per_app(std::move(bounds));
}

core::WeightPolicy wire_weights(const std::string& value, std::size_t line_no) {
  if (value == "unit") return core::WeightPolicy::Unit;
  if (value == "priority") return core::WeightPolicy::Priority;
  if (value == "stretch") return core::WeightPolicy::Stretch;
  throw ParseError(line_no, "bad \"weights\": '" + value + "'");
}

const char* to_string(core::WeightPolicy policy) noexcept {
  switch (policy) {
    case core::WeightPolicy::Unit: return "unit";
    case core::WeightPolicy::Priority: return "priority";
    case core::WeightPolicy::Stretch: return "stretch";
  }
  return "?";
}

/// Accumulates the solve fields shared by the "solve" and "pareto" request
/// lines, so the two parsers cannot drift: each `consume` call handles one
/// field, `finish` resolves the instance-dependent pieces (bounds need the
/// application count, so they resolve after the instance).
struct SolveFieldReader {
  SolveFieldReader(std::size_t line_no, const std::string& base_dir)
      : line_no(line_no), base_dir(base_dir) {}

  std::size_t line_no;
  const std::string& base_dir;

  std::optional<core::Problem> problem;
  api::SolveRequest request;
  std::string id;
  std::string period_bounds, latency_bounds;
  bool have_period_bounds = false, have_latency_bounds = false;
  bool have_objective = false;

  /// Consumes one shared field; false when `key` is not a solve field.
  bool consume(const std::string& key, const std::string& value) {
    if (key == "id") {
      id = value;
    } else if (key == "objective") {
      const auto objective = api::parse_objective(value);
      if (!objective) throw ParseError(line_no, "bad \"objective\": '" + value + "'");
      request.objective = *objective;
      have_objective = true;
    } else if (key == "kind") {
      const auto kind = api::parse_mapping_kind(value);
      if (!kind) throw ParseError(line_no, "bad \"kind\": '" + value + "'");
      request.kind = *kind;
    } else if (key == "weights") {
      request.weights = wire_weights(value, line_no);
    } else if (key == "solver") {
      if (value != "auto") request.solver = value;
    } else if (key == "period_bounds") {
      period_bounds = value;
      have_period_bounds = true;
    } else if (key == "latency_bounds") {
      latency_bounds = value;
      have_latency_bounds = true;
    } else if (key == "energy_budget") {
      request.constraints.energy_budget = parse_wire_number<double>(key, value, line_no);
    } else if (key == "node_budget") {
      request.node_budget = parse_wire_number<std::uint64_t>(key, value, line_no);
    } else if (key == "time_budget_s") {
      request.time_budget_seconds = parse_wire_number<double>(key, value, line_no);
    } else if (key == "seed") {
      request.seed = parse_wire_number<std::uint64_t>(key, value, line_no);
    } else if (key == "deadline_ms") {
      request.deadline_ms = parse_wire_number<std::uint64_t>(key, value, line_no);
    } else if (key == "warm_start") {
      request.warm_start = parse_wire_number<double>(key, value, line_no);
    } else if (key == "trace") {
      // Transport-level trace id (obs/trace.hpp), spliced in by a router so
      // shard span logs share the fleet-wide id. Like `cancel` it is not
      // request identity: the server peeks it straight off the raw fields,
      // so the reader only has to accept the key. Never echoed back.
    } else if (key == "problem") {
      if (problem) throw ParseError(line_no, "duplicate instance field");
      try {
        problem = parse_problem_string(value);
      } catch (const std::exception& e) {
        throw ParseError(line_no, std::string("instance error: ") + e.what());
      }
    } else if (key == "path") {
      if (problem) throw ParseError(line_no, "duplicate instance field");
      std::string path = value;
      if (!base_dir.empty() && !path.empty() && path.front() != '/') {
        path = base_dir + "/" + path;
      }
      try {
        problem = load_problem(path);
      } catch (const std::exception& e) {
        throw ParseError(line_no, std::string("instance error: ") + e.what());
      }
    } else {
      return false;
    }
    return true;
  }

  /// Resolves the accumulated fields into the decoded request.
  WireSolveRequest finish() {
    if (!problem) {
      throw ParseError(line_no, "exactly one of \"problem\" or \"path\" is required");
    }
    if (have_period_bounds) {
      request.constraints.period = wire_bounds(
          "period_bounds", period_bounds, problem->application_count(), line_no);
    }
    if (have_latency_bounds) {
      request.constraints.latency = wire_bounds(
          "latency_bounds", latency_bounds, problem->application_count(), line_no);
    }
    return WireSolveRequest{std::move(*problem), std::move(request), std::move(id)};
  }
};

/// Shared formatting of the solve fields (everything but type/sweep
/// machinery and the trailing instance); fields equal to `defaults` are
/// omitted, mirroring SolveFieldReader.
void write_solve_fields(FlatJsonWriter& out, const api::SolveRequest& request,
                        const api::SolveRequest& defaults) {
  out.field("objective", api::to_string(request.objective));
  if (request.kind != defaults.kind) {
    out.field("kind", api::to_string(request.kind));
  }
  if (request.weights != defaults.weights) {
    out.field("weights", to_string(request.weights));
  }
  if (request.solver) out.field("solver", *request.solver);
  const auto bounds_list = [](const core::Thresholds& bounds) {
    std::string list;
    for (std::size_t a = 0; a < bounds.size(); ++a) {
      list += (a ? "," : "") + format_double_exact(bounds.bound(a));
    }
    return list;
  };
  if (request.constraints.period) {
    out.field("period_bounds", bounds_list(*request.constraints.period));
  }
  if (request.constraints.latency) {
    out.field("latency_bounds", bounds_list(*request.constraints.latency));
  }
  if (request.constraints.energy_budget) {
    out.field("energy_budget",
              format_double_exact(*request.constraints.energy_budget));
  }
  if (request.node_budget != defaults.node_budget) {
    out.field("node_budget", std::to_string(request.node_budget));
  }
  if (request.time_budget_seconds) {
    out.field("time_budget_s", format_double_exact(*request.time_budget_seconds));
  }
  if (request.seed != defaults.seed) {
    out.field("seed", std::to_string(request.seed));
  }
  if (request.deadline_ms) {
    out.field("deadline_ms", std::to_string(*request.deadline_ms));
  }
  if (request.warm_start) {
    out.field("warm_start", format_double_exact(*request.warm_start));
  }
}

}  // namespace

std::string format_solve_key(const core::Problem& problem,
                             const api::SolveRequest& request) {
  // Exactly the wire fields of format_solve_request minus "type" and "id":
  // two requests that differ only in presentation (field order on the wire,
  // replicated vs per-app bound lists, instance-text whitespace) collapse
  // to the same bytes, while anything that can change the result — the
  // objective pair, constraint values, budgets, seed, warm-start hint, the
  // instance itself — keeps its exact canonical form.
  FlatJsonWriter out;
  write_solve_fields(out, request, api::SolveRequest{});
  out.field("problem", format_problem(problem));
  return std::move(out).str();
}

WireSolveRequest parse_solve_request(const JsonFields& fields,
                                     std::size_t line_no,
                                     const std::string& base_dir) {
  SolveFieldReader reader{line_no, base_dir};
  for (const auto& [key, value] : fields) {
    if (key == "type") {
      if (value != "solve") {
        throw ParseError(line_no, "expected \"type\":\"solve\", got '" + value + "'");
      }
    } else if (!reader.consume(key, value)) {
      throw ParseError(line_no, "unknown request field \"" + key + "\"");
    }
  }
  return reader.finish();
}

WireSolveRequest parse_solve_request_line(const std::string& line,
                                          std::size_t line_no,
                                          const std::string& base_dir) {
  return parse_solve_request(parse_flat_json(line, line_no), line_no, base_dir);
}

std::string format_solve_request(const core::Problem& problem,
                                 const api::SolveRequest& request,
                                 const std::string& id) {
  FlatJsonWriter out;
  out.field("type", "solve");
  if (!id.empty()) out.field("id", id);
  write_solve_fields(out, request, api::SolveRequest{});
  out.field("problem", format_problem(problem));
  return std::move(out).str();
}

WireParetoRequest parse_pareto_request(const JsonFields& fields,
                                       std::size_t line_no,
                                       const std::string& base_dir) {
  SolveFieldReader reader{line_no, base_dir};
  api::SweepRequest sweep;
  bool have_bounds = false;
  for (const auto& [key, value] : fields) {
    if (key == "type") {
      if (value != "pareto") {
        throw ParseError(line_no,
                         "expected \"type\":\"pareto\", got '" + value + "'");
      }
    } else if (key == "sweep") {
      const auto swept = api::parse_objective(value);
      if (!swept) throw ParseError(line_no, "bad \"sweep\": '" + value + "'");
      sweep.swept = *swept;
    } else if (key == "sweep_bounds") {
      sweep.bounds = parse_wire_list(key, value, line_no);
      have_bounds = true;
    } else if (key == "refine") {
      sweep.refine = parse_wire_number<std::size_t>(key, value, line_no);
    } else if (!reader.consume(key, value)) {
      throw ParseError(line_no, "unknown pareto request field \"" + key + "\"");
    }
  }
  if (!have_bounds) {
    throw ParseError(line_no, "pareto request needs \"sweep_bounds\"");
  }
  // Sweeps default to energy minimization (the §2 progression); an explicit
  // "objective" overrides it through the shared reader.
  if (!reader.have_objective) {
    reader.request.objective = api::Objective::Energy;
  }
  WireSolveRequest base = reader.finish();
  sweep.base = std::move(base.request);
  return WireParetoRequest{std::move(base.problem), std::move(sweep),
                           std::move(base.id)};
}

WireParetoRequest parse_pareto_request_line(const std::string& line,
                                            std::size_t line_no,
                                            const std::string& base_dir) {
  return parse_pareto_request(parse_flat_json(line, line_no), line_no, base_dir);
}

std::string format_pareto_request(const core::Problem& problem,
                                  const api::SweepRequest& request,
                                  const std::string& id) {
  const api::SweepRequest defaults;
  FlatJsonWriter out;
  out.field("type", "pareto");
  if (!id.empty()) out.field("id", id);
  if (request.swept != defaults.swept) {
    out.field("sweep", api::to_string(request.swept));
  }
  std::string grid;
  for (std::size_t i = 0; i < request.bounds.size(); ++i) {
    grid += (i ? "," : "") + format_double_exact(request.bounds[i]);
  }
  out.field("sweep_bounds", grid);
  if (request.refine != defaults.refine) {
    out.field("refine", std::to_string(request.refine));
  }
  write_solve_fields(out, request.base, defaults.base);
  out.field("problem", format_problem(problem));
  return std::move(out).str();
}

}  // namespace pipeopt::io
