#include "io/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace pipeopt::io {
namespace {

/// Parses one JSON string literal starting at in[pos] == '"'; advances pos
/// past the closing quote. Supports the standard escapes plus ASCII \uXXXX.
std::string json_string(const std::string& in, std::size_t& pos,
                        std::size_t line_no) {
  if (pos >= in.size() || in[pos] != '"') {
    throw ParseError(line_no, "expected '\"'");
  }
  ++pos;
  std::string out;
  while (pos < in.size() && in[pos] != '"') {
    char c = in[pos++];
    if (c != '\\') {
      out += c;
      continue;
    }
    if (pos >= in.size()) throw ParseError(line_no, "dangling escape");
    const char esc = in[pos++];
    switch (esc) {
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case '/': out += '/'; break;
      case 'n': out += '\n'; break;
      case 't': out += '\t'; break;
      case 'r': out += '\r'; break;
      case 'b': out += '\b'; break;
      case 'f': out += '\f'; break;
      case 'u': {
        if (pos + 4 > in.size()) throw ParseError(line_no, "bad \\u escape");
        const std::string hex = in.substr(pos, 4);
        pos += 4;
        unsigned code = 0;
        for (const char h : hex) {
          if (!std::isxdigit(static_cast<unsigned char>(h))) {
            throw ParseError(line_no, "bad \\u escape '" + hex + "'");
          }
          code = code * 16 + static_cast<unsigned>(
                                 h <= '9'   ? h - '0'
                                 : h <= 'F' ? h - 'A' + 10
                                            : h - 'a' + 10);
        }
        if (code > 0x7F) {
          throw ParseError(line_no,
                           "unsupported \\u escape '" + hex + "' (ASCII only)");
        }
        out += static_cast<char>(code);
        break;
      }
      default:
        throw ParseError(line_no, std::string("unknown escape '\\") + esc + "'");
    }
  }
  if (pos >= in.size()) throw ParseError(line_no, "unterminated string");
  ++pos;  // closing quote
  return out;
}

void skip_spaces(const std::string& in, std::size_t& pos) {
  while (pos < in.size() &&
         (in[pos] == ' ' || in[pos] == '\t' || in[pos] == '\r')) {
    ++pos;
  }
}

}  // namespace

JsonFields parse_flat_json(const std::string& line, std::size_t line_no) {
  JsonFields fields;
  std::size_t pos = 0;
  skip_spaces(line, pos);
  if (pos >= line.size() || line[pos] != '{') {
    throw ParseError(line_no, "expected a JSON object");
  }
  ++pos;
  skip_spaces(line, pos);
  if (pos < line.size() && line[pos] == '}') {
    ++pos;
  } else {
    for (;;) {
      std::string key = json_string(line, pos, line_no);
      skip_spaces(line, pos);
      if (pos >= line.size() || line[pos] != ':') {
        throw ParseError(line_no, "expected ':' after key '" + key + "'");
      }
      ++pos;
      skip_spaces(line, pos);
      std::string value = json_string(line, pos, line_no);
      fields.emplace_back(std::move(key), std::move(value));
      skip_spaces(line, pos);
      if (pos < line.size() && line[pos] == ',') {
        ++pos;
        skip_spaces(line, pos);
        continue;
      }
      if (pos < line.size() && line[pos] == '}') {
        ++pos;
        break;
      }
      throw ParseError(line_no, "expected ',' or '}'");
    }
  }
  skip_spaces(line, pos);
  if (pos != line.size()) {
    throw ParseError(line_no, "trailing characters after the object");
  }
  return fields;
}

std::string json_quote(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  out += '"';
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

std::vector<double> parse_wire_list(const std::string& key,
                                    const std::string& value,
                                    std::size_t line_no) {
  std::vector<double> values;
  std::string token;
  for (std::size_t i = 0;; ++i) {
    if (i == value.size() || value[i] == ',') {
      values.push_back(parse_wire_number<double>(key, token, line_no));
      token.clear();
      if (i == value.size()) break;
    } else {
      token += value[i];
    }
  }
  return values;
}

std::string format_double_exact(double value) {
  if (std::isinf(value)) return value > 0 ? "inf" : "-inf";
  if (std::isnan(value)) return "nan";
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, value);
  return std::string(buf, ptr);
}

void FlatJsonWriter::field(const std::string& key, const std::string& value) {
  body_ += body_.empty() ? "{" : ",";
  body_ += json_quote(key);
  body_ += ':';
  body_ += json_quote(value);
}

std::string FlatJsonWriter::str() && {
  if (body_.empty()) return "{}";
  return std::move(body_) + "}";
}

}  // namespace pipeopt::io
