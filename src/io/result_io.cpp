#include "io/result_io.hpp"

#include <cstddef>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "util/numeric.hpp"

namespace pipeopt::io {
namespace {

api::SolveStatus wire_status(const std::string& value, std::size_t line_no) {
  for (const api::SolveStatus status :
       {api::SolveStatus::Optimal, api::SolveStatus::Feasible,
        api::SolveStatus::Infeasible, api::SolveStatus::LimitExceeded,
        api::SolveStatus::NoSolver}) {
    if (value == api::to_string(status)) return status;
  }
  throw ParseError(line_no, "bad \"status\": '" + value + "'");
}

/// Parses the digits of one non-negative index out of `text` at `pos`.
std::size_t mapping_index(const std::string& text, std::size_t& pos,
                          std::size_t line_no) {
  std::size_t end = pos;
  while (end < text.size() && text[end] >= '0' && text[end] <= '9') ++end;
  const auto parsed =
      util::parse_number<std::size_t>(text.substr(pos, end - pos));
  if (!parsed) {
    throw ParseError(line_no, "bad mapping term near '" + text.substr(pos) + "'");
  }
  pos = end;
  return *parsed;
}

void mapping_expect(const std::string& text, std::size_t& pos, char c,
                    std::size_t line_no) {
  if (pos >= text.size() || text[pos] != c) {
    throw ParseError(line_no, std::string("expected '") + c +
                                  "' in mapping term near '" +
                                  text.substr(pos) + "'");
  }
  ++pos;
}

}  // namespace

std::string format_mapping(const core::Mapping& mapping) {
  std::string out;
  for (const core::IntervalAssignment& iv : mapping.intervals()) {
    if (!out.empty()) out += ';';
    out += std::to_string(iv.app) + ':' + std::to_string(iv.first) + '-' +
           std::to_string(iv.last) + '@' + std::to_string(iv.proc) + '/' +
           std::to_string(iv.mode);
  }
  return out;
}

core::Mapping parse_mapping(const std::string& text, std::size_t line_no) {
  std::vector<core::IntervalAssignment> intervals;
  std::size_t pos = 0;
  while (pos < text.size()) {
    core::IntervalAssignment iv;
    iv.app = mapping_index(text, pos, line_no);
    mapping_expect(text, pos, ':', line_no);
    iv.first = mapping_index(text, pos, line_no);
    mapping_expect(text, pos, '-', line_no);
    iv.last = mapping_index(text, pos, line_no);
    mapping_expect(text, pos, '@', line_no);
    iv.proc = mapping_index(text, pos, line_no);
    mapping_expect(text, pos, '/', line_no);
    iv.mode = mapping_index(text, pos, line_no);
    if (iv.first > iv.last) {
      throw ParseError(line_no, "inverted interval " + std::to_string(iv.first) +
                                    "-" + std::to_string(iv.last));
    }
    intervals.push_back(iv);
    if (pos < text.size()) mapping_expect(text, pos, ';', line_no);
  }
  try {
    return core::Mapping(std::move(intervals));
  } catch (const std::exception& e) {
    throw ParseError(line_no, std::string("bad mapping: ") + e.what());
  }
}

namespace {

std::string format_result_impl(const api::SolveResult& result,
                               const std::string& id, bool include_wall,
                               const std::optional<double>& bound) {
  FlatJsonWriter out;
  out.field("type", "result");
  if (!id.empty()) out.field("id", id);
  if (bound) out.field("bound", format_double_exact(*bound));
  out.field("status", result.status_name());
  out.field("solver", result.solver);
  out.field("value", format_double_exact(result.value));
  if (result.mapping) {
    out.field("mapping", format_mapping(*result.mapping));
    std::string periods, latencies;
    for (std::size_t a = 0; a < result.metrics.per_app.size(); ++a) {
      periods += (a ? "," : "") +
                 format_double_exact(result.metrics.per_app[a].period);
      latencies += (a ? "," : "") +
                   format_double_exact(result.metrics.per_app[a].latency);
    }
    out.field("periods", periods);
    out.field("latencies", latencies);
    out.field("weighted_period",
              format_double_exact(result.metrics.max_weighted_period));
    out.field("weighted_latency",
              format_double_exact(result.metrics.max_weighted_latency));
    out.field("energy", format_double_exact(result.metrics.energy));
  }
  if (include_wall) {
    out.field("wall_s", format_double_exact(result.wall_seconds));
  }
  for (const auto& [key, value] : result.diagnostics) {
    out.field("diag." + key, value);
  }
  return std::move(out).str();
}

}  // namespace

std::string format_result(const api::SolveResult& result, const std::string& id,
                          bool include_wall) {
  return format_result_impl(result, id, include_wall, std::nullopt);
}

std::string format_front_point(const api::SolveResult& result, double bound,
                               const std::string& id, bool include_wall) {
  return format_result_impl(result, id, include_wall, bound);
}

WireResult parse_result(const JsonFields& fields, std::size_t line_no) {
  WireResult wire;
  api::SolveResult& result = wire.result;
  bool have_status = false;
  std::optional<std::vector<double>> periods, latencies;
  for (const auto& [key, value] : fields) {
    if (key == "type") {
      if (value != "result") {
        throw ParseError(line_no,
                         "expected \"type\":\"result\", got '" + value + "'");
      }
    } else if (key == "id") {
      wire.id = value;
    } else if (key == "bound") {
      wire.bound = parse_wire_number<double>(key, value, line_no);
    } else if (key == "status") {
      result.status = wire_status(value, line_no);
      have_status = true;
    } else if (key == "solver") {
      result.solver = value;
    } else if (key == "value") {
      result.value = parse_wire_number<double>(key, value, line_no);
    } else if (key == "mapping") {
      result.mapping = parse_mapping(value, line_no);
    } else if (key == "periods") {
      periods = parse_wire_list(key, value, line_no);
    } else if (key == "latencies") {
      latencies = parse_wire_list(key, value, line_no);
    } else if (key == "weighted_period") {
      result.metrics.max_weighted_period = parse_wire_number<double>(key, value, line_no);
    } else if (key == "weighted_latency") {
      result.metrics.max_weighted_latency = parse_wire_number<double>(key, value, line_no);
    } else if (key == "energy") {
      result.metrics.energy = parse_wire_number<double>(key, value, line_no);
    } else if (key == "wall_s") {
      result.wall_seconds = parse_wire_number<double>(key, value, line_no);
    } else if (key.rfind("diag.", 0) == 0) {
      result.diagnostics.emplace_back(key.substr(5), value);
    } else {
      throw ParseError(line_no, "unknown result field \"" + key + "\"");
    }
  }
  if (!have_status) throw ParseError(line_no, "missing \"status\"");
  if (periods || latencies) {
    if (!periods || !latencies || periods->size() != latencies->size()) {
      throw ParseError(line_no, "periods/latencies must come as equal lists");
    }
    result.metrics.per_app.resize(periods->size());
    for (std::size_t a = 0; a < periods->size(); ++a) {
      result.metrics.per_app[a].period = (*periods)[a];
      result.metrics.per_app[a].latency = (*latencies)[a];
    }
  }
  return wire;
}

WireResult parse_result_line(const std::string& line, std::size_t line_no) {
  return parse_result(parse_flat_json(line, line_no), line_no);
}

std::string format_pareto_summary(const api::ParetoFront& front,
                                  const std::string& id, bool include_wall) {
  FlatJsonWriter out;
  out.field("type", "pareto");
  if (!id.empty()) out.field("id", id);
  out.field("status", front.cancelled ? "cancelled" : "complete");
  out.field("points", std::to_string(front.front.size()));
  out.field("evaluated", std::to_string(front.evaluations.size()));
  out.field("infeasible", std::to_string(front.infeasible_points));
  out.field("cancelled", std::to_string(front.cancelled_points));
  if (include_wall) {
    out.field("wall_s", format_double_exact(front.wall_seconds));
  }
  return std::move(out).str();
}

WireParetoSummary parse_pareto_summary(const JsonFields& fields,
                                       std::size_t line_no) {
  WireParetoSummary summary;
  bool have_status = false;
  for (const auto& [key, value] : fields) {
    if (key == "type") {
      if (value != "pareto") {
        throw ParseError(line_no,
                         "expected \"type\":\"pareto\", got '" + value + "'");
      }
    } else if (key == "id") {
      summary.id = value;
    } else if (key == "status") {
      if (value == "complete") {
        summary.complete = true;
      } else if (value == "cancelled") {
        summary.complete = false;
      } else {
        throw ParseError(line_no, "bad \"status\": '" + value + "'");
      }
      have_status = true;
    } else if (key == "points") {
      summary.points = parse_wire_number<std::uint64_t>(key, value, line_no);
    } else if (key == "evaluated") {
      summary.evaluated = parse_wire_number<std::uint64_t>(key, value, line_no);
    } else if (key == "infeasible") {
      summary.infeasible = parse_wire_number<std::uint64_t>(key, value, line_no);
    } else if (key == "cancelled") {
      summary.cancelled_points =
          parse_wire_number<std::uint64_t>(key, value, line_no);
    } else if (key == "wall_s") {
      summary.wall_seconds = parse_wire_number<double>(key, value, line_no);
    } else {
      throw ParseError(line_no, "unknown summary field \"" + key + "\"");
    }
  }
  if (!have_status) throw ParseError(line_no, "missing \"status\"");
  return summary;
}

WireParetoSummary parse_pareto_summary_line(const std::string& line,
                                            std::size_t line_no) {
  return parse_pareto_summary(parse_flat_json(line, line_no), line_no);
}

std::string format_error(const std::string& message, const std::string& id,
                         const std::string& code) {
  FlatJsonWriter out;
  out.field("type", "error");
  if (!id.empty()) out.field("id", id);
  if (!code.empty()) out.field("code", code);
  out.field("message", message);
  return std::move(out).str();
}

}  // namespace pipeopt::io
