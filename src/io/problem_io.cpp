#include "io/problem_io.hpp"

#include <cctype>
#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

#include "util/table.hpp"

namespace pipeopt::io {
namespace {

/// Strips a trailing comment and surrounding whitespace.
std::string clean_line(std::string line) {
  if (const auto hash = line.find('#'); hash != std::string::npos) {
    line.erase(hash);
  }
  const auto first = line.find_first_not_of(" \t\r");
  if (first == std::string::npos) return {};
  const auto last = line.find_last_not_of(" \t\r");
  return line.substr(first, last - first + 1);
}

/// Splits on whitespace.
std::vector<std::string> tokens_of(const std::string& line) {
  std::istringstream is(line);
  std::vector<std::string> tokens;
  std::string token;
  while (is >> token) tokens.push_back(token);
  return tokens;
}

/// Parses "key=value" tokens; returns value for `key` or throws.
std::string keyed_value(const std::vector<std::string>& tokens,
                        const std::string& key, std::size_t line_no) {
  const std::string prefix = key + "=";
  for (const std::string& t : tokens) {
    if (t.rfind(prefix, 0) == 0) return t.substr(prefix.size());
  }
  throw ParseError(line_no, "missing " + key + "=...");
}

double parse_number(const std::string& text, std::size_t line_no) {
  try {
    std::size_t used = 0;
    const double value = std::stod(text, &used);
    if (used != text.size()) throw std::invalid_argument(text);
    return value;
  } catch (const std::exception&) {
    throw ParseError(line_no, "bad number '" + text + "'");
  }
}

/// Parses "a,b,c" into doubles.
std::vector<double> parse_list(const std::string& text, std::size_t line_no) {
  std::vector<double> values;
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, ',')) {
    values.push_back(parse_number(item, line_no));
  }
  if (values.empty()) throw ParseError(line_no, "empty list");
  return values;
}

}  // namespace

core::Problem parse_problem(std::istream& in) {
  core::CommModel comm = core::CommModel::Overlap;
  double alpha = 2.0;
  double bandwidth = 0.0;
  std::vector<core::Processor> processors;
  std::vector<core::Application> applications;

  std::string raw;
  std::size_t line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    const std::string line = clean_line(raw);
    if (line.empty()) continue;
    const auto tokens = tokens_of(line);
    const std::string& kind = tokens.front();

    if (kind == "comm") {
      if (tokens.size() != 2) throw ParseError(line_no, "comm takes one value");
      if (tokens[1] == "overlap") {
        comm = core::CommModel::Overlap;
      } else if (tokens[1] == "no-overlap") {
        comm = core::CommModel::NoOverlap;
      } else {
        throw ParseError(line_no, "comm must be overlap or no-overlap");
      }
    } else if (kind == "alpha") {
      if (tokens.size() != 2) throw ParseError(line_no, "alpha takes one value");
      alpha = parse_number(tokens[1], line_no);
    } else if (kind == "bandwidth") {
      if (tokens.size() != 2) {
        throw ParseError(line_no, "bandwidth takes one value");
      }
      bandwidth = parse_number(tokens[1], line_no);
    } else if (kind == "processor") {
      if (tokens.size() < 2) throw ParseError(line_no, "processor needs a name");
      const std::string name = tokens[1];
      const double static_energy =
          parse_number(keyed_value(tokens, "static", line_no), line_no);
      const auto speeds =
          parse_list(keyed_value(tokens, "speeds", line_no), line_no);
      try {
        processors.emplace_back(speeds, static_energy, name);
      } catch (const std::exception& e) {
        throw ParseError(line_no, e.what());
      }
    } else if (kind == "app") {
      if (tokens.size() < 2) throw ParseError(line_no, "app needs a name");
      const std::string name = tokens[1];
      const double weight =
          parse_number(keyed_value(tokens, "weight", line_no), line_no);
      const double input =
          parse_number(keyed_value(tokens, "input", line_no), line_no);
      const std::string stage_text = keyed_value(tokens, "stages", line_no);
      std::vector<core::StageSpec> stages;
      std::stringstream ss(stage_text);
      std::string pair;
      while (std::getline(ss, pair, ',')) {
        const auto colon = pair.find(':');
        if (colon == std::string::npos) {
          throw ParseError(line_no, "stage must be w:delta, got '" + pair + "'");
        }
        stages.push_back(core::StageSpec{
            parse_number(pair.substr(0, colon), line_no),
            parse_number(pair.substr(colon + 1), line_no)});
      }
      try {
        applications.emplace_back(input, std::move(stages), weight, name);
      } catch (const std::exception& e) {
        throw ParseError(line_no, e.what());
      }
    } else {
      throw ParseError(line_no, "unknown directive '" + kind + "'");
    }
  }

  if (processors.empty()) throw ParseError(line_no, "no processors declared");
  if (applications.empty()) throw ParseError(line_no, "no applications declared");
  if (!(bandwidth > 0.0)) throw ParseError(line_no, "bandwidth not declared");
  try {
    return core::Problem(std::move(applications),
                         core::Platform(std::move(processors), bandwidth, alpha),
                         comm);
  } catch (const std::exception& e) {
    throw ParseError(line_no, e.what());
  }
}

core::Problem parse_problem_string(const std::string& text) {
  std::istringstream is(text);
  return parse_problem(is);
}

core::Problem load_problem(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open '" + path + "'");
  return parse_problem(in);
}

namespace {

/// Parses one JSON string literal starting at in[pos] == '"'; advances pos
/// past the closing quote. Supports the standard escapes plus ASCII \uXXXX.
std::string json_string(const std::string& in, std::size_t& pos,
                        std::size_t line_no) {
  if (pos >= in.size() || in[pos] != '"') {
    throw ParseError(line_no, "expected '\"'");
  }
  ++pos;
  std::string out;
  while (pos < in.size() && in[pos] != '"') {
    char c = in[pos++];
    if (c != '\\') {
      out += c;
      continue;
    }
    if (pos >= in.size()) throw ParseError(line_no, "dangling escape");
    const char esc = in[pos++];
    switch (esc) {
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case '/': out += '/'; break;
      case 'n': out += '\n'; break;
      case 't': out += '\t'; break;
      case 'r': out += '\r'; break;
      case 'b': out += '\b'; break;
      case 'f': out += '\f'; break;
      case 'u': {
        if (pos + 4 > in.size()) throw ParseError(line_no, "bad \\u escape");
        const std::string hex = in.substr(pos, 4);
        pos += 4;
        unsigned code = 0;
        for (const char h : hex) {
          if (!std::isxdigit(static_cast<unsigned char>(h))) {
            throw ParseError(line_no, "bad \\u escape '" + hex + "'");
          }
          code = code * 16 + static_cast<unsigned>(
                                 h <= '9'   ? h - '0'
                                 : h <= 'F' ? h - 'A' + 10
                                            : h - 'a' + 10);
        }
        if (code > 0x7F) {
          throw ParseError(line_no,
                           "unsupported \\u escape '" + hex + "' (ASCII only)");
        }
        out += static_cast<char>(code);
        break;
      }
      default:
        throw ParseError(line_no, std::string("unknown escape '\\") + esc + "'");
    }
  }
  if (pos >= in.size()) throw ParseError(line_no, "unterminated string");
  ++pos;  // closing quote
  return out;
}

void skip_spaces(const std::string& in, std::size_t& pos) {
  while (pos < in.size() && (in[pos] == ' ' || in[pos] == '\t' ||
                             in[pos] == '\r')) {
    ++pos;
  }
}

/// Parses one flat JSON object of string values: {"key": "value", ...}.
std::vector<std::pair<std::string, std::string>> json_object(
    const std::string& line, std::size_t line_no) {
  std::vector<std::pair<std::string, std::string>> fields;
  std::size_t pos = 0;
  skip_spaces(line, pos);
  if (pos >= line.size() || line[pos] != '{') {
    throw ParseError(line_no, "expected a JSON object");
  }
  ++pos;
  skip_spaces(line, pos);
  if (pos < line.size() && line[pos] == '}') {
    ++pos;
  } else {
    for (;;) {
      std::string key = json_string(line, pos, line_no);
      skip_spaces(line, pos);
      if (pos >= line.size() || line[pos] != ':') {
        throw ParseError(line_no, "expected ':' after key '" + key + "'");
      }
      ++pos;
      skip_spaces(line, pos);
      std::string value = json_string(line, pos, line_no);
      fields.emplace_back(std::move(key), std::move(value));
      skip_spaces(line, pos);
      if (pos < line.size() && line[pos] == ',') {
        ++pos;
        skip_spaces(line, pos);
        continue;
      }
      if (pos < line.size() && line[pos] == '}') {
        ++pos;
        break;
      }
      throw ParseError(line_no, "expected ',' or '}'");
    }
  }
  skip_spaces(line, pos);
  if (pos != line.size()) {
    throw ParseError(line_no, "trailing characters after the object");
  }
  return fields;
}

}  // namespace

std::vector<core::Problem> parse_batch_jsonl(std::istream& in,
                                             const std::string& base_dir) {
  std::vector<core::Problem> problems;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    bool blank = true;
    for (const char c : line) blank &= c == ' ' || c == '\t' || c == '\r';
    if (blank) continue;
    const auto fields = json_object(line, line_no);
    std::string path, inline_text;
    for (const auto& [key, value] : fields) {
      if (key == "path") {
        path = value;
      } else if (key == "problem") {
        inline_text = value;
      } else {
        throw ParseError(line_no, "unknown key '" + key +
                                      "' (expected \"path\" or \"problem\")");
      }
    }
    if (path.empty() == inline_text.empty()) {
      throw ParseError(line_no,
                       "exactly one of \"path\" or \"problem\" is required");
    }
    try {
      if (!path.empty()) {
        if (!base_dir.empty() && path.front() != '/') {
          path = base_dir + "/" + path;
        }
        problems.push_back(load_problem(path));
      } else {
        problems.push_back(parse_problem_string(inline_text));
      }
    } catch (const std::exception& e) {
      throw ParseError(line_no, std::string("instance error: ") + e.what());
    }
  }
  return problems;
}

std::vector<core::Problem> load_batch(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open '" + path + "'");
  const auto slash = path.find_last_of('/');
  return parse_batch_jsonl(in,
                           slash == std::string::npos ? std::string()
                                                      : path.substr(0, slash));
}

std::string format_problem(const core::Problem& problem) {
  const auto& platform = problem.platform();
  if (!platform.has_uniform_bandwidth()) {
    throw std::invalid_argument(
        "format_problem: only comm-homogeneous platforms are expressible");
  }
  std::ostringstream os;
  os << "comm " << to_string(problem.comm_model()) << '\n';
  os << "alpha " << util::format_double(platform.alpha()) << '\n';
  os << "bandwidth " << util::format_double(platform.uniform_bandwidth())
     << '\n';
  for (std::size_t u = 0; u < platform.processor_count(); ++u) {
    const auto& proc = platform.processor(u);
    os << "processor "
       << (proc.name().empty() ? "P" + std::to_string(u) : proc.name())
       << " static=" << util::format_double(proc.static_energy()) << " speeds=";
    for (std::size_t m = 0; m < proc.mode_count(); ++m) {
      os << (m ? "," : "") << util::format_double(proc.speed(m));
    }
    os << '\n';
  }
  for (std::size_t a = 0; a < problem.application_count(); ++a) {
    const auto& app = problem.application(a);
    os << "app " << (app.name().empty() ? "App" + std::to_string(a) : app.name())
       << " weight=" << util::format_double(app.weight())
       << " input=" << util::format_double(app.boundary_size(0)) << " stages=";
    for (std::size_t k = 0; k < app.stage_count(); ++k) {
      os << (k ? "," : "") << util::format_double(app.compute(k)) << ':'
         << util::format_double(app.boundary_size(k + 1));
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace pipeopt::io
