#include "io/problem_io.hpp"

#include <fstream>
#include <sstream>
#include <vector>

#include "util/table.hpp"

namespace pipeopt::io {
namespace {

/// Strips a trailing comment and surrounding whitespace.
std::string clean_line(std::string line) {
  if (const auto hash = line.find('#'); hash != std::string::npos) {
    line.erase(hash);
  }
  const auto first = line.find_first_not_of(" \t\r");
  if (first == std::string::npos) return {};
  const auto last = line.find_last_not_of(" \t\r");
  return line.substr(first, last - first + 1);
}

/// Splits on whitespace.
std::vector<std::string> tokens_of(const std::string& line) {
  std::istringstream is(line);
  std::vector<std::string> tokens;
  std::string token;
  while (is >> token) tokens.push_back(token);
  return tokens;
}

/// Parses "key=value" tokens; returns value for `key` or throws.
std::string keyed_value(const std::vector<std::string>& tokens,
                        const std::string& key, std::size_t line_no) {
  const std::string prefix = key + "=";
  for (const std::string& t : tokens) {
    if (t.rfind(prefix, 0) == 0) return t.substr(prefix.size());
  }
  throw ParseError(line_no, "missing " + key + "=...");
}

double parse_number(const std::string& text, std::size_t line_no) {
  try {
    std::size_t used = 0;
    const double value = std::stod(text, &used);
    if (used != text.size()) throw std::invalid_argument(text);
    return value;
  } catch (const std::exception&) {
    throw ParseError(line_no, "bad number '" + text + "'");
  }
}

/// Parses "a,b,c" into doubles.
std::vector<double> parse_list(const std::string& text, std::size_t line_no) {
  std::vector<double> values;
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, ',')) {
    values.push_back(parse_number(item, line_no));
  }
  if (values.empty()) throw ParseError(line_no, "empty list");
  return values;
}

}  // namespace

core::Problem parse_problem(std::istream& in) {
  core::CommModel comm = core::CommModel::Overlap;
  double alpha = 2.0;
  double bandwidth = 0.0;
  std::vector<core::Processor> processors;
  std::vector<core::Application> applications;

  std::string raw;
  std::size_t line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    const std::string line = clean_line(raw);
    if (line.empty()) continue;
    const auto tokens = tokens_of(line);
    const std::string& kind = tokens.front();

    if (kind == "comm") {
      if (tokens.size() != 2) throw ParseError(line_no, "comm takes one value");
      if (tokens[1] == "overlap") {
        comm = core::CommModel::Overlap;
      } else if (tokens[1] == "no-overlap") {
        comm = core::CommModel::NoOverlap;
      } else {
        throw ParseError(line_no, "comm must be overlap or no-overlap");
      }
    } else if (kind == "alpha") {
      if (tokens.size() != 2) throw ParseError(line_no, "alpha takes one value");
      alpha = parse_number(tokens[1], line_no);
    } else if (kind == "bandwidth") {
      if (tokens.size() != 2) {
        throw ParseError(line_no, "bandwidth takes one value");
      }
      bandwidth = parse_number(tokens[1], line_no);
    } else if (kind == "processor") {
      if (tokens.size() < 2) throw ParseError(line_no, "processor needs a name");
      const std::string name = tokens[1];
      const double static_energy =
          parse_number(keyed_value(tokens, "static", line_no), line_no);
      const auto speeds =
          parse_list(keyed_value(tokens, "speeds", line_no), line_no);
      try {
        processors.emplace_back(speeds, static_energy, name);
      } catch (const std::exception& e) {
        throw ParseError(line_no, e.what());
      }
    } else if (kind == "app") {
      if (tokens.size() < 2) throw ParseError(line_no, "app needs a name");
      const std::string name = tokens[1];
      const double weight =
          parse_number(keyed_value(tokens, "weight", line_no), line_no);
      const double input =
          parse_number(keyed_value(tokens, "input", line_no), line_no);
      const std::string stage_text = keyed_value(tokens, "stages", line_no);
      std::vector<core::StageSpec> stages;
      std::stringstream ss(stage_text);
      std::string pair;
      while (std::getline(ss, pair, ',')) {
        const auto colon = pair.find(':');
        if (colon == std::string::npos) {
          throw ParseError(line_no, "stage must be w:delta, got '" + pair + "'");
        }
        stages.push_back(core::StageSpec{
            parse_number(pair.substr(0, colon), line_no),
            parse_number(pair.substr(colon + 1), line_no)});
      }
      try {
        applications.emplace_back(input, std::move(stages), weight, name);
      } catch (const std::exception& e) {
        throw ParseError(line_no, e.what());
      }
    } else {
      throw ParseError(line_no, "unknown directive '" + kind + "'");
    }
  }

  if (processors.empty()) throw ParseError(line_no, "no processors declared");
  if (applications.empty()) throw ParseError(line_no, "no applications declared");
  if (!(bandwidth > 0.0)) throw ParseError(line_no, "bandwidth not declared");
  try {
    return core::Problem(std::move(applications),
                         core::Platform(std::move(processors), bandwidth, alpha),
                         comm);
  } catch (const std::exception& e) {
    throw ParseError(line_no, e.what());
  }
}

core::Problem parse_problem_string(const std::string& text) {
  std::istringstream is(text);
  return parse_problem(is);
}

core::Problem load_problem(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open '" + path + "'");
  return parse_problem(in);
}

std::string format_problem(const core::Problem& problem) {
  const auto& platform = problem.platform();
  if (!platform.has_uniform_bandwidth()) {
    throw std::invalid_argument(
        "format_problem: only comm-homogeneous platforms are expressible");
  }
  std::ostringstream os;
  os << "comm " << to_string(problem.comm_model()) << '\n';
  os << "alpha " << util::format_double(platform.alpha()) << '\n';
  os << "bandwidth " << util::format_double(platform.uniform_bandwidth())
     << '\n';
  for (std::size_t u = 0; u < platform.processor_count(); ++u) {
    const auto& proc = platform.processor(u);
    os << "processor "
       << (proc.name().empty() ? "P" + std::to_string(u) : proc.name())
       << " static=" << util::format_double(proc.static_energy()) << " speeds=";
    for (std::size_t m = 0; m < proc.mode_count(); ++m) {
      os << (m ? "," : "") << util::format_double(proc.speed(m));
    }
    os << '\n';
  }
  for (std::size_t a = 0; a < problem.application_count(); ++a) {
    const auto& app = problem.application(a);
    os << "app " << (app.name().empty() ? "App" + std::to_string(a) : app.name())
       << " weight=" << util::format_double(app.weight())
       << " input=" << util::format_double(app.boundary_size(0)) << " stages=";
    for (std::size_t k = 0; k < app.stage_count(); ++k) {
      os << (k ? "," : "") << util::format_double(app.compute(k)) << ':'
         << util::format_double(app.boundary_size(k + 1));
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace pipeopt::io
