#include "io/problem_io.hpp"

#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

namespace pipeopt::io {
namespace {

/// Strips a trailing comment and surrounding whitespace.
std::string clean_line(std::string line) {
  if (const auto hash = line.find('#'); hash != std::string::npos) {
    line.erase(hash);
  }
  const auto first = line.find_first_not_of(" \t\r");
  if (first == std::string::npos) return {};
  const auto last = line.find_last_not_of(" \t\r");
  return line.substr(first, last - first + 1);
}

/// Splits on whitespace.
std::vector<std::string> tokens_of(const std::string& line) {
  std::istringstream is(line);
  std::vector<std::string> tokens;
  std::string token;
  while (is >> token) tokens.push_back(token);
  return tokens;
}

/// Parses "key=value" tokens; returns value for `key` or throws.
std::string keyed_value(const std::vector<std::string>& tokens,
                        const std::string& key, std::size_t line_no) {
  const std::string prefix = key + "=";
  for (const std::string& t : tokens) {
    if (t.rfind(prefix, 0) == 0) return t.substr(prefix.size());
  }
  throw ParseError(line_no, "missing " + key + "=...");
}

double parse_number(const std::string& text, std::size_t line_no) {
  try {
    std::size_t used = 0;
    const double value = std::stod(text, &used);
    if (used != text.size()) throw std::invalid_argument(text);
    return value;
  } catch (const std::exception&) {
    throw ParseError(line_no, "bad number '" + text + "'");
  }
}

/// Parses "a,b,c" into doubles.
std::vector<double> parse_list(const std::string& text, std::size_t line_no) {
  std::vector<double> values;
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, ',')) {
    values.push_back(parse_number(item, line_no));
  }
  if (values.empty()) throw ParseError(line_no, "empty list");
  return values;
}

}  // namespace

namespace {

/// One indexed bandwidth row ("link 2 1,2,3"): row index + p values.
struct BandwidthRow {
  std::size_t index = 0;
  std::vector<double> values;
  std::size_t line_no = 0;
};

/// Parses "link|input|output INDEX v0,v1,..." into a BandwidthRow.
BandwidthRow parse_bandwidth_row(const std::vector<std::string>& tokens,
                                 std::size_t line_no) {
  if (tokens.size() != 3) {
    throw ParseError(line_no, tokens.front() + " takes an index and a list");
  }
  BandwidthRow row;
  row.line_no = line_no;
  const double index = parse_number(tokens[1], line_no);
  if (index < 0 || index != static_cast<double>(static_cast<std::size_t>(index))) {
    throw ParseError(line_no, "bad index '" + tokens[1] + "'");
  }
  row.index = static_cast<std::size_t>(index);
  row.values = parse_list(tokens[2], line_no);
  return row;
}

/// Assembles indexed rows into a dense `count`-row matrix, demanding every
/// row exactly once and a uniform width.
std::vector<std::vector<double>> dense_rows(const std::vector<BandwidthRow>& rows,
                                            std::size_t count, std::size_t width,
                                            const std::string& what,
                                            std::size_t line_no) {
  std::vector<std::vector<double>> dense(count);
  for (const BandwidthRow& row : rows) {
    if (row.index >= count) {
      throw ParseError(row.line_no, what + " index " + std::to_string(row.index) +
                                        " out of range (have " +
                                        std::to_string(count) + ")");
    }
    if (!dense[row.index].empty()) {
      throw ParseError(row.line_no,
                       "duplicate " + what + " row " + std::to_string(row.index));
    }
    if (row.values.size() != width) {
      throw ParseError(row.line_no, what + " row " + std::to_string(row.index) +
                                        " needs " + std::to_string(width) +
                                        " values, got " +
                                        std::to_string(row.values.size()));
    }
    dense[row.index] = row.values;
  }
  for (std::size_t i = 0; i < count; ++i) {
    if (dense[i].empty()) {
      throw ParseError(line_no, "missing " + what + " row " + std::to_string(i));
    }
  }
  return dense;
}

}  // namespace

core::Problem parse_problem(std::istream& in) {
  core::CommModel comm = core::CommModel::Overlap;
  double alpha = 2.0;
  double bandwidth = 0.0;
  std::vector<core::Processor> processors;
  std::vector<core::Application> applications;
  std::vector<BandwidthRow> link_rows, input_rows, output_rows;

  std::string raw;
  std::size_t line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    const std::string line = clean_line(raw);
    if (line.empty()) continue;
    const auto tokens = tokens_of(line);
    const std::string& kind = tokens.front();

    if (kind == "comm") {
      if (tokens.size() != 2) throw ParseError(line_no, "comm takes one value");
      if (tokens[1] == "overlap") {
        comm = core::CommModel::Overlap;
      } else if (tokens[1] == "no-overlap") {
        comm = core::CommModel::NoOverlap;
      } else {
        throw ParseError(line_no, "comm must be overlap or no-overlap");
      }
    } else if (kind == "alpha") {
      if (tokens.size() != 2) throw ParseError(line_no, "alpha takes one value");
      alpha = parse_number(tokens[1], line_no);
    } else if (kind == "bandwidth") {
      if (tokens.size() != 2) {
        throw ParseError(line_no, "bandwidth takes one value");
      }
      bandwidth = parse_number(tokens[1], line_no);
    } else if (kind == "processor") {
      if (tokens.size() < 2) throw ParseError(line_no, "processor needs a name");
      const std::string name = tokens[1];
      const double static_energy =
          parse_number(keyed_value(tokens, "static", line_no), line_no);
      const auto speeds =
          parse_list(keyed_value(tokens, "speeds", line_no), line_no);
      try {
        processors.emplace_back(speeds, static_energy, name);
      } catch (const std::exception& e) {
        throw ParseError(line_no, e.what());
      }
    } else if (kind == "app") {
      if (tokens.size() < 2) throw ParseError(line_no, "app needs a name");
      const std::string name = tokens[1];
      const double weight =
          parse_number(keyed_value(tokens, "weight", line_no), line_no);
      const double input =
          parse_number(keyed_value(tokens, "input", line_no), line_no);
      const std::string stage_text = keyed_value(tokens, "stages", line_no);
      std::vector<core::StageSpec> stages;
      std::stringstream ss(stage_text);
      std::string pair;
      while (std::getline(ss, pair, ',')) {
        const auto colon = pair.find(':');
        if (colon == std::string::npos) {
          throw ParseError(line_no, "stage must be w:delta, got '" + pair + "'");
        }
        stages.push_back(core::StageSpec{
            parse_number(pair.substr(0, colon), line_no),
            parse_number(pair.substr(colon + 1), line_no)});
      }
      try {
        applications.emplace_back(input, std::move(stages), weight, name);
      } catch (const std::exception& e) {
        throw ParseError(line_no, e.what());
      }
    } else if (kind == "link") {
      link_rows.push_back(parse_bandwidth_row(tokens, line_no));
    } else if (kind == "input") {
      input_rows.push_back(parse_bandwidth_row(tokens, line_no));
    } else if (kind == "output") {
      output_rows.push_back(parse_bandwidth_row(tokens, line_no));
    } else {
      throw ParseError(line_no, "unknown directive '" + kind + "'");
    }
  }

  if (processors.empty()) throw ParseError(line_no, "no processors declared");
  if (applications.empty()) throw ParseError(line_no, "no applications declared");

  const bool heterogeneous =
      !link_rows.empty() || !input_rows.empty() || !output_rows.empty();
  if (heterogeneous && bandwidth > 0.0) {
    throw ParseError(line_no,
                     "bandwidth and link/input/output rows are exclusive");
  }
  if (!heterogeneous && !(bandwidth > 0.0)) {
    throw ParseError(line_no, "bandwidth not declared");
  }
  const std::size_t p = processors.size();
  const std::size_t apps = applications.size();
  try {
    core::Platform platform =
        heterogeneous
            ? core::Platform(std::move(processors),
                             dense_rows(link_rows, p, p, "link", line_no),
                             dense_rows(input_rows, apps, p, "input", line_no),
                             dense_rows(output_rows, apps, p, "output", line_no),
                             alpha)
            : core::Platform(std::move(processors), bandwidth, alpha);
    return core::Problem(std::move(applications), std::move(platform), comm);
  } catch (const ParseError&) {
    throw;
  } catch (const std::exception& e) {
    throw ParseError(line_no, e.what());
  }
}

core::Problem parse_problem_string(const std::string& text) {
  std::istringstream is(text);
  return parse_problem(is);
}

core::Problem load_problem(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open '" + path + "'");
  return parse_problem(in);
}

std::vector<core::Problem> parse_batch_jsonl(std::istream& in,
                                             const std::string& base_dir) {
  std::vector<core::Problem> problems;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    bool blank = true;
    for (const char c : line) blank &= c == ' ' || c == '\t' || c == '\r';
    if (blank) continue;
    const auto fields = parse_flat_json(line, line_no);
    std::string path, inline_text;
    for (const auto& [key, value] : fields) {
      if (key == "path") {
        path = value;
      } else if (key == "problem") {
        inline_text = value;
      } else {
        throw ParseError(line_no, "unknown key '" + key +
                                      "' (expected \"path\" or \"problem\")");
      }
    }
    if (path.empty() == inline_text.empty()) {
      throw ParseError(line_no,
                       "exactly one of \"path\" or \"problem\" is required");
    }
    try {
      if (!path.empty()) {
        if (!base_dir.empty() && path.front() != '/') {
          path = base_dir + "/" + path;
        }
        problems.push_back(load_problem(path));
      } else {
        problems.push_back(parse_problem_string(inline_text));
      }
    } catch (const std::exception& e) {
      throw ParseError(line_no, std::string("instance error: ") + e.what());
    }
  }
  return problems;
}

std::vector<core::Problem> load_batch(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open '" + path + "'");
  const auto slash = path.find_last_of('/');
  return parse_batch_jsonl(in,
                           slash == std::string::npos ? std::string()
                                                      : path.substr(0, slash));
}

std::string format_problem(const core::Problem& problem) {
  // Shortest round-trip number formatting throughout: the emitted text
  // parses back to the bit-identical instance, which is what lets the
  // server wire format guarantee bit-identical solve results.
  const auto& platform = problem.platform();
  std::ostringstream os;
  os << "comm " << to_string(problem.comm_model()) << '\n';
  os << "alpha " << format_double_exact(platform.alpha()) << '\n';
  if (platform.has_uniform_bandwidth()) {
    os << "bandwidth " << format_double_exact(platform.uniform_bandwidth())
       << '\n';
  }
  for (std::size_t u = 0; u < platform.processor_count(); ++u) {
    const auto& proc = platform.processor(u);
    os << "processor "
       << (proc.name().empty() ? "P" + std::to_string(u) : proc.name())
       << " static=" << format_double_exact(proc.static_energy())
       << " speeds=";
    for (std::size_t m = 0; m < proc.mode_count(); ++m) {
      os << (m ? "," : "") << format_double_exact(proc.speed(m));
    }
    os << '\n';
  }
  for (std::size_t a = 0; a < problem.application_count(); ++a) {
    const auto& app = problem.application(a);
    os << "app " << (app.name().empty() ? "App" + std::to_string(a) : app.name())
       << " weight=" << format_double_exact(app.weight())
       << " input=" << format_double_exact(app.boundary_size(0)) << " stages=";
    for (std::size_t k = 0; k < app.stage_count(); ++k) {
      os << (k ? "," : "") << format_double_exact(app.compute(k)) << ':'
         << format_double_exact(app.boundary_size(k + 1));
    }
    os << '\n';
  }
  if (!platform.has_uniform_bandwidth()) {
    const std::size_t p = platform.processor_count();
    for (std::size_t u = 0; u < p; ++u) {
      os << "link " << u << ' ';
      for (std::size_t v = 0; v < p; ++v) {
        os << (v ? "," : "") << format_double_exact(platform.bandwidth(u, v));
      }
      os << '\n';
    }
    for (std::size_t a = 0; a < problem.application_count(); ++a) {
      os << "input " << a << ' ';
      for (std::size_t u = 0; u < p; ++u) {
        os << (u ? "," : "") << format_double_exact(platform.in_bandwidth(a, u));
      }
      os << '\n';
      os << "output " << a << ' ';
      for (std::size_t u = 0; u < p; ++u) {
        os << (u ? "," : "")
           << format_double_exact(platform.out_bandwidth(a, u));
      }
      os << '\n';
    }
  }
  return os.str();
}

}  // namespace pipeopt::io
