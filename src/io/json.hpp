#pragma once

/// \file json.hpp
/// The flat-JSON dialect every pipeopt wire format speaks: one object per
/// line, string keys, string values, order preserved. One parser and one
/// writer serve the batch manifests of `solve-batch` (problem_io), the
/// request/result serialization of request_io/result_io, and the
/// pipeopt-server protocol — deliberately not a general JSON library.
///
/// Numbers travel as strings formatted by `format_double_exact` (shortest
/// round-trip form via std::to_chars), so a value that crosses the wire and
/// comes back parses to the identical bits — the property the server's
/// bit-identity guarantee rests on.

#include <cstddef>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "util/numeric.hpp"

namespace pipeopt::io {

/// Thrown on malformed input; the message names the line number.
class ParseError : public std::runtime_error {
 public:
  ParseError(std::size_t line, const std::string& what)
      : std::runtime_error("line " + std::to_string(line) + ": " + what) {}
};

/// Ordered fields of one flat JSON object.
using JsonFields = std::vector<std::pair<std::string, std::string>>;

/// Parses one flat JSON object of string values: {"key": "value", ...}.
/// \throws ParseError (naming `line_no`) on anything else — nested values,
/// non-string scalars, trailing characters.
[[nodiscard]] JsonFields parse_flat_json(const std::string& line,
                                         std::size_t line_no = 1);

/// JSON string literal for `text`, quotes included; escapes the mandatory
/// characters (", \, control bytes).
[[nodiscard]] std::string json_quote(const std::string& text);

/// Shortest decimal form of `value` that parses back to the identical
/// double (std::to_chars round-trip guarantee); "inf"/"-inf"/"nan" for the
/// non-finite values, matching util::parse_number<double>.
[[nodiscard]] std::string format_double_exact(double value);

/// Strict typed scalar off the wire: the whole value must parse (the same
/// contract as the CLI flags). \throws ParseError naming the field.
template <typename T>
[[nodiscard]] T parse_wire_number(const std::string& key,
                                  const std::string& value,
                                  std::size_t line_no) {
  const auto parsed = util::parse_number<T>(value);
  if (!parsed) {
    throw ParseError(line_no, "bad number for \"" + key + "\": '" + value + "'");
  }
  return *parsed;
}

/// Comma-separated doubles off the wire ("1,2.5,inf"); empty items are
/// malformed. \throws ParseError naming the field.
[[nodiscard]] std::vector<double> parse_wire_list(const std::string& key,
                                                  const std::string& value,
                                                  std::size_t line_no);

/// Builds one flat JSON object line field by field, preserving order.
class FlatJsonWriter {
 public:
  /// Appends "key": "value" (both get quoted/escaped).
  void field(const std::string& key, const std::string& value);

  /// The finished object, "{...}". The writer is spent afterwards.
  [[nodiscard]] std::string str() &&;

 private:
  std::string body_;
};

}  // namespace pipeopt::io
