#include "sim/simulator.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/evaluation.hpp"
#include "util/random.hpp"

namespace pipeopt::sim {
namespace {

using core::IntervalAssignment;
using core::Mapping;
using core::Problem;

/// Static description of one application's chain under a mapping.
struct Chain {
  std::vector<double> transfer_time;  ///< size m+1: t_j of transfer j
  std::vector<double> compute_time;   ///< size m:   c_j of node j
  std::vector<std::size_t> node_proc; ///< size m: processor of node j
  std::vector<IntervalAssignment> intervals;
};

Chain build_chain(const Problem& problem, std::size_t app_idx,
                  std::vector<IntervalAssignment> intervals) {
  Chain chain;
  chain.intervals = std::move(intervals);
  const std::size_t m = chain.intervals.size();
  const auto& app = problem.application(app_idx);
  const auto& platform = problem.platform();

  chain.transfer_time.resize(m + 1);
  chain.compute_time.resize(m);
  chain.node_proc.resize(m);
  for (std::size_t j = 0; j < m; ++j) {
    const IntervalAssignment& iv = chain.intervals[j];
    const double speed = platform.processor(iv.proc).speed(iv.mode);
    chain.node_proc[j] = iv.proc;
    chain.compute_time[j] = app.total_compute(iv.first, iv.last) / speed;
    const double in_bw = (j == 0)
                             ? platform.in_bandwidth(app_idx, iv.proc)
                             : platform.bandwidth(chain.intervals[j - 1].proc, iv.proc);
    chain.transfer_time[j] = app.boundary_size(iv.first) / in_bw;
  }
  const IntervalAssignment& last = chain.intervals.back();
  chain.transfer_time[m] = app.boundary_size(last.last + 1) /
                           platform.out_bandwidth(app_idx, last.proc);
  return chain;
}

/// Multiplies nominal durations by 1 + U[0, jitter] (identity when the
/// simulation is deterministic).
class DurationSampler {
 public:
  DurationSampler(double jitter, std::uint64_t seed)
      : jitter_(jitter), rng_(seed) {}

  [[nodiscard]] double operator()(double nominal) {
    if (jitter_ <= 0.0 || nominal <= 0.0) return nominal;
    return nominal * (1.0 + rng_.uniform(0.0, jitter_));
  }

 private:
  double jitter_;
  util::Rng rng_;
};

/// Simulates one application in the overlap model.
/// Recurrences (X = transfer finish, C = compute finish, t/c durations):
///   X(0,d) = max(inj(d), X(0,d-1)) + t_0
///   X(j,d) = max(C(j-1,d), X(j,d-1)) + t_j          1 <= j <= m
///   C(j,d) = max(X(j,d), C(j,d-1)) + c_j            0 <= j <  m
AppSimResult run_overlap(const Chain& chain, std::size_t app_idx,
                         const std::vector<double>& inj, Trace* trace,
                         DurationSampler& dur) {
  const std::size_t m = chain.compute_time.size();
  std::vector<double> x_prev(m + 1, 0.0);  // X(j, d-1)
  std::vector<double> c_prev(m, 0.0);      // C(j, d-1)

  AppSimResult result;
  result.injections = inj;
  result.completions.resize(inj.size());

  for (std::size_t d = 0; d < inj.size(); ++d) {
    // Within one data-set round, c_prev[j-1] has already been advanced to
    // C(j-1, d) by the time transfer j reads it; x_prev[j] and c_prev[j]
    // still hold the d-1 values until overwritten below.
    for (std::size_t j = 0; j <= m; ++j) {
      const double ready = (j == 0) ? inj[d] : c_prev[j - 1];
      const double start = std::max(ready, x_prev[j]);
      const double end = start + dur(chain.transfer_time[j]);
      if (trace != nullptr && chain.transfer_time[j] > 0.0) {
        trace->add({OpKind::Transfer, app_idx, d,
                    j < m ? chain.intervals[j].first : chain.intervals[m - 1].last + 1,
                    j < m ? chain.intervals[j].first : chain.intervals[m - 1].last + 1,
                    j < m ? chain.node_proc[j] : chain.node_proc[m - 1], start, end});
      }
      x_prev[j] = end;
      if (j < m) {
        const double cstart = std::max(end, c_prev[j]);
        const double cend = cstart + dur(chain.compute_time[j]);
        if (trace != nullptr) {
          trace->add({OpKind::Compute, app_idx, d, chain.intervals[j].first,
                      chain.intervals[j].last, chain.node_proc[j], cstart, cend});
        }
        c_prev[j] = cend;
      }
    }
    result.completions[d] = x_prev[m];
  }
  return result;
}

/// Simulates one application in the no-overlap model. Each node is a single
/// serialized resource cycling receive_d, compute_d, send_d. Transfer j of
/// data set d occupies both endpoint resources:
///   start X(j,d) = max(sender_ready, receiver_ready)
///     sender_ready   = inj(d) ⊔ X(0,d-1)   (j == 0, virtual source port)
///                      C(j-1,d)            (j >= 1: sender's preceding op)
///     receiver_ready = X(j+1,d-1)          (j < m: receiver's preceding op
///                                           is its send of data set d-1)
///                      X(m,d-1)            (j == m, virtual sink port)
///   C(j,d) = X(j,d) + c_j                  (node's next op after its recv)
AppSimResult run_no_overlap(const Chain& chain, std::size_t app_idx,
                            const std::vector<double>& inj, Trace* trace,
                            DurationSampler& dur) {
  const std::size_t m = chain.compute_time.size();
  std::vector<double> x_prev(m + 1, 0.0);  // X(j, d-1)

  AppSimResult result;
  result.injections = inj;
  result.completions.resize(inj.size());

  for (std::size_t d = 0; d < inj.size(); ++d) {
    double compute_end_prev_node = 0.0;  // C(j-1, d)
    std::vector<double> x_cur(m + 1, 0.0);
    for (std::size_t j = 0; j <= m; ++j) {
      const double sender_ready =
          (j == 0) ? std::max(inj[d], x_prev[0]) : compute_end_prev_node;
      const double receiver_ready = (j < m) ? x_prev[j + 1] : x_prev[m];
      const double start = std::max(sender_ready, receiver_ready);
      const double end = start + dur(chain.transfer_time[j]);
      if (trace != nullptr && chain.transfer_time[j] > 0.0) {
        trace->add({OpKind::Transfer, app_idx, d,
                    j < m ? chain.intervals[j].first : chain.intervals[m - 1].last + 1,
                    j < m ? chain.intervals[j].first : chain.intervals[m - 1].last + 1,
                    j < m ? chain.node_proc[j] : chain.node_proc[m - 1], start, end});
      }
      x_cur[j] = end;
      if (j < m) {
        const double cend = end + dur(chain.compute_time[j]);
        if (trace != nullptr) {
          trace->add({OpKind::Compute, app_idx, d, chain.intervals[j].first,
                      chain.intervals[j].last, chain.node_proc[j], end, cend});
        }
        compute_end_prev_node = cend;
      }
    }
    x_prev = std::move(x_cur);
    result.completions[d] = x_prev[m];
  }
  return result;
}

void finalize_metrics(AppSimResult& result) {
  const std::size_t d = result.completions.size();
  result.first_latency = result.completions[0] - result.injections[0];
  result.max_latency = 0.0;
  for (std::size_t i = 0; i < d; ++i) {
    result.max_latency = std::max(result.max_latency,
                                  result.completions[i] - result.injections[i]);
  }
  if (d >= 2) {
    // Average completion gap over the trailing half: transients decay after
    // at most one pass through the chain, so this is exact in steady state.
    const std::size_t from = d / 2;
    result.steady_period = (result.completions[d - 1] - result.completions[from]) /
                           static_cast<double>(d - 1 - from);
  } else {
    result.steady_period = 0.0;
  }
}

}  // namespace

SimResult simulate(const Problem& problem, const Mapping& mapping,
                   const SimConfig& config) {
  if (config.datasets == 0) {
    throw std::invalid_argument("simulate: needs at least one data set");
  }
  mapping.validate_or_throw(problem);

  SimResult result;
  result.apps.resize(problem.application_count());
  Trace* trace = config.record_trace ? &result.trace : nullptr;

  for (std::size_t a = 0; a < problem.application_count(); ++a) {
    Chain chain = build_chain(problem, a, mapping.intervals_of(a));

    double period = 0.0;
    if (config.injection_period) {
      period = *config.injection_period;
    } else {
      period = core::application_period(problem, chain.intervals);
    }
    std::vector<double> inj(config.datasets);
    for (std::size_t d = 0; d < config.datasets; ++d) {
      inj[d] = period * static_cast<double>(d);
    }

    DurationSampler sampler(config.jitter, config.jitter_seed + a);
    AppSimResult app_result =
        (problem.comm_model() == core::CommModel::Overlap)
            ? run_overlap(chain, a, inj, trace, sampler)
            : run_no_overlap(chain, a, inj, trace, sampler);
    finalize_metrics(app_result);
    result.apps[a] = std::move(app_result);
  }
  return result;
}

}  // namespace pipeopt::sim
