#pragma once

/// \file simulator.hpp
/// Deterministic pipelined-execution simulator (the paper's execution model,
/// §3.2–3.3, made operational).
///
/// A mapping induces, per application, a chain of interval nodes joined by
/// transfers: transfer 0 brings δ^0 from the virtual source, transfer j
/// moves the boundary data between consecutive intervals, and the final
/// transfer delivers δ^n to the virtual sink. Data sets are injected at a
/// configurable period and every operation is scheduled as soon as possible
/// (§3.3: interval mappings make ASAP scheduling well-defined):
///
///  * overlap model — each processor owns three FIFO resources (in-port,
///    CPU, out-port); a transfer occupies the sender's out-port and the
///    receiver's in-port; computation proceeds concurrently (Eq. 3 regime);
///  * no-overlap model — each processor is a single serialized resource
///    executing receive_d, compute_d, send_d per data set (Eq. 4 regime).
///
/// Because applications never share processors (and virtual sources/sinks
/// are per-application), the concurrent applications simulate independently.
///
/// The simulator is the empirical check on the closed forms: steady-state
/// inter-completion times must equal Eq. 3/Eq. 4 periods, and the latency of
/// a data set traversing an empty pipeline must equal Eq. 5.

#include <cstddef>
#include <optional>
#include <vector>

#include "core/mapping.hpp"
#include "core/problem.hpp"
#include "sim/trace.hpp"

namespace pipeopt::sim {

/// Simulation parameters.
struct SimConfig {
  /// Number of data sets injected per application.
  std::size_t datasets = 64;
  /// Interval between injections. Unset = each application injects at its
  /// own analytic period (steady-state regime). 0 = all data available at
  /// time zero (saturation regime).
  std::optional<double> injection_period;
  /// Record per-operation trace records (costs memory for large runs).
  bool record_trace = false;
  /// Failure-injection knob: every operation duration is multiplied by a
  /// seeded random factor in [1, 1 + jitter]. 0 = deterministic nominal
  /// durations (the Eq. 3-5 regime). Positive jitter models transient
  /// slowdowns (OS noise, cache effects); the measured period then exceeds
  /// the analytic one and the gap quantifies the model's sensitivity.
  double jitter = 0.0;
  /// Seed for the jitter stream (one independent stream per application).
  std::uint64_t jitter_seed = 1;
};

/// Per-application simulation outcome.
struct AppSimResult {
  std::vector<double> injections;   ///< inj(d)
  std::vector<double> completions;  ///< time the sink received data set d
  double first_latency = 0.0;       ///< completion(0) - inj(0): empty pipeline
  double max_latency = 0.0;         ///< max_d completion(d) - inj(d)
  double steady_period = 0.0;       ///< completion gap over the trailing half
};

/// Whole-simulation outcome.
struct SimResult {
  std::vector<AppSimResult> apps;
  Trace trace;  ///< empty unless SimConfig::record_trace
};

/// Runs the simulation. The mapping must be valid for the problem.
/// \throws std::invalid_argument on invalid mapping or datasets == 0.
[[nodiscard]] SimResult simulate(const core::Problem& problem,
                                 const core::Mapping& mapping,
                                 const SimConfig& config = {});

}  // namespace pipeopt::sim
