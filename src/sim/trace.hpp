#pragma once

/// \file trace.hpp
/// Execution traces produced by the pipeline simulator: one record per
/// operation (transfer or computation) per data set, plus utilization
/// accounting and CSV export for offline Gantt inspection.

#include <cstddef>
#include <string>
#include <vector>

namespace pipeopt::sim {

/// Kind of simulated operation.
enum class OpKind { Transfer, Compute };

[[nodiscard]] const char* to_string(OpKind k) noexcept;

/// One operation instance.
struct OpRecord {
  OpKind kind = OpKind::Compute;
  std::size_t app = 0;       ///< application index
  std::size_t dataset = 0;   ///< data-set sequence number
  std::size_t stage_first = 0;  ///< for Compute: interval range; for Transfer: boundary index in both
  std::size_t stage_last = 0;
  std::size_t proc = 0;      ///< executing processor (receiver for transfers)
  double start = 0.0;
  double end = 0.0;

  [[nodiscard]] double duration() const noexcept { return end - start; }
};

/// Trace of a whole simulation.
class Trace {
 public:
  void add(OpRecord record) { records_.push_back(record); }
  [[nodiscard]] const std::vector<OpRecord>& records() const noexcept { return records_; }
  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }

  /// Busy time of one processor's compute resource.
  [[nodiscard]] double compute_busy_time(std::size_t proc) const;

  /// Simulation makespan (max end over all records; 0 when empty).
  [[nodiscard]] double makespan() const;

  /// CSV rendering: kind,app,dataset,first,last,proc,start,end.
  [[nodiscard]] std::string to_csv() const;

 private:
  std::vector<OpRecord> records_;
};

}  // namespace pipeopt::sim
