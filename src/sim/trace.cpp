#include "sim/trace.hpp"

#include <algorithm>
#include <sstream>

namespace pipeopt::sim {

const char* to_string(OpKind k) noexcept {
  switch (k) {
    case OpKind::Transfer: return "transfer";
    case OpKind::Compute: return "compute";
  }
  return "?";
}

double Trace::compute_busy_time(std::size_t proc) const {
  double busy = 0.0;
  for (const OpRecord& r : records_) {
    if (r.kind == OpKind::Compute && r.proc == proc) busy += r.duration();
  }
  return busy;
}

double Trace::makespan() const {
  double end = 0.0;
  for (const OpRecord& r : records_) end = std::max(end, r.end);
  return end;
}

std::string Trace::to_csv() const {
  std::ostringstream os;
  os << "kind,app,dataset,first,last,proc,start,end\n";
  for (const OpRecord& r : records_) {
    os << to_string(r.kind) << ',' << r.app << ',' << r.dataset << ','
       << r.stage_first << ',' << r.stage_last << ',' << r.proc << ','
       << r.start << ',' << r.end << '\n';
  }
  return os.str();
}

}  // namespace pipeopt::sim
