#pragma once

/// \file motivating_example.hpp
/// The paper's §2 / Figure 1 worked example, reconstructed exactly.
///
/// Two applications, three bi-modal processors, unit bandwidths, α = 2,
/// no static energy:
///   App1: δ⁰ = 1, stages (w, δ) = (3,3), (2,2), (1,0)
///   App2: δ⁰ = 0, stages (w, δ) = (2,2), (6,1), (4,1), (2,1)
///   P1 ∈ {3,6}, P2 ∈ {6,8}, P3 ∈ {1,6}
///
/// The figure's unprinted δ values (δ²_App1, δ¹_App2, δ³_App2) are chosen
/// ≤ 2 so they never bind in the paper's mappings; every §2 number is then
/// reproduced exactly:
///   * minimal period 1 (energy 136),
///   * minimal latency 2.75,
///   * minimal energy 10 (period 14),
///   * minimal energy under period ≤ 2: 46.

#include "core/problem.hpp"

namespace pipeopt::gen {

/// Builds the §2 instance (overlap communication model, as in Eq. 1).
[[nodiscard]] core::Problem motivating_example();

/// Reference values from §2, used by tests and the FIG1 bench.
struct MotivatingExampleFacts {
  static constexpr double kOptimalPeriod = 1.0;
  static constexpr double kOptimalLatency = 2.75;
  static constexpr double kMinimalEnergy = 10.0;
  static constexpr double kPeriodAtMinimalEnergy = 14.0;
  static constexpr double kEnergyUnderPeriod2 = 46.0;
  static constexpr double kEnergyAtOptimalPeriod = 136.0;
};

}  // namespace pipeopt::gen
