#include "gen/workloads.hpp"

#include <cmath>
#include <string>

namespace pipeopt::gen {

using core::Application;
using core::Platform;
using core::Processor;
using core::StageSpec;

Application video_transcode_app(double frame_size, double rate_weight) {
  // (w, δ_out) per stage; compute in "operation units" relative to one
  // frame of the given size.
  std::vector<StageSpec> stages{
      {0.5 * frame_size, frame_size},         // demux: passthrough
      {8.0 * frame_size, 4.0 * frame_size},   // decode: raw frames out
      {2.0 * frame_size, 4.0 * frame_size},   // deinterlace
      {1.5 * frame_size, 2.0 * frame_size},   // scale: downsampled
      {10.0 * frame_size, 0.5 * frame_size},  // encode: compressed out
      {0.3 * frame_size, 0.5 * frame_size},   // mux
  };
  return Application(frame_size, std::move(stages), rate_weight, "video");
}

Application dsp_filter_app(std::size_t taps, double sample_size) {
  std::vector<StageSpec> stages(taps == 0 ? 1 : taps,
                                StageSpec{1.0, sample_size});
  return Application(sample_size, std::move(stages), 1.0, "dsp");
}

Application image_pipeline_app(double image_size) {
  std::vector<StageSpec> stages{
      {1.0 * image_size, image_size},          // acquire
      {6.0 * image_size, image_size},          // denoise
      {4.0 * image_size, 0.5 * image_size},    // segment
      {3.0 * image_size, 0.1 * image_size},    // feature extraction
      {2.0 * image_size, 0.01 * image_size},   // classify: labels out
  };
  return Application(image_size, std::move(stages), 1.0, "image");
}

Platform homogeneous_cluster(std::size_t p, std::size_t modes, double base_speed,
                             double turbo_factor, double bandwidth,
                             double static_energy, double alpha) {
  std::vector<double> speeds;
  speeds.reserve(modes);
  for (std::size_t m = 0; m < modes; ++m) {
    const double frac = modes <= 1 ? 1.0
                                   : static_cast<double>(m) /
                                         static_cast<double>(modes - 1);
    speeds.push_back(base_speed * std::pow(turbo_factor, frac));
  }
  std::vector<Processor> procs;
  procs.reserve(p);
  for (std::size_t u = 0; u < p; ++u) {
    procs.emplace_back(speeds, static_energy, "node" + std::to_string(u));
  }
  return Platform(std::move(procs), bandwidth, alpha);
}

Platform workstation_network(util::Rng& rng, std::size_t p, std::size_t modes,
                             double bandwidth, double static_energy, double alpha) {
  std::vector<Processor> procs;
  procs.reserve(p);
  for (std::size_t u = 0; u < p; ++u) {
    const double base = rng.log_uniform(1.0, 8.0);
    std::vector<double> speeds;
    speeds.reserve(modes);
    for (std::size_t m = 0; m < modes; ++m) {
      const double frac = modes <= 1 ? 1.0
                                     : static_cast<double>(m) /
                                           static_cast<double>(modes - 1);
      speeds.push_back(base * (0.5 + 0.5 * frac));  // half speed .. full speed
    }
    procs.emplace_back(std::move(speeds), static_energy,
                       "ws" + std::to_string(u));
  }
  return Platform(std::move(procs), bandwidth, alpha);
}

}  // namespace pipeopt::gen
