#pragma once

/// \file random_instances.hpp
/// Seeded random instance generators for the three platform classes and the
/// application families the paper studies. Property tests and the Table 1 /
/// Table 2 benches draw instances from here.

#include <cstddef>
#include <vector>

#include "core/platform.hpp"
#include "core/problem.hpp"
#include "util/random.hpp"

namespace pipeopt::gen {

/// Application shape parameters.
struct AppParams {
  std::size_t min_stages = 2;
  std::size_t max_stages = 5;
  double min_compute = 1.0;
  double max_compute = 20.0;    ///< w drawn log-uniform in [min, max]
  double min_data = 0.0;        ///< δ drawn uniform in [min, max]
  double max_data = 5.0;
  bool weighted = false;        ///< draw W_a uniform in [0.5, 2] when set
};

/// Platform shape parameters.
struct PlatformParams {
  std::size_t modes = 2;            ///< speed modes per processor
  double min_speed = 1.0;
  double max_speed = 10.0;          ///< speeds drawn log-uniform
  double min_bandwidth = 0.5;
  double max_bandwidth = 4.0;       ///< per-link, fully heterogeneous only
  double uniform_bandwidth = 1.0;   ///< comm-homogeneous platforms
  double static_energy = 0.5;
  double alpha = 2.0;
};

/// One random linear-chain application.
[[nodiscard]] core::Application random_application(util::Rng& rng,
                                                   const AppParams& params);

/// `count` random applications.
[[nodiscard]] std::vector<core::Application> random_applications(
    util::Rng& rng, std::size_t count, const AppParams& params);

/// Homogeneous-pipeline-without-communication applications (the special-app
/// family): every stage w = 1 (scaled by 1/W_a when weighted), δ = 0.
[[nodiscard]] std::vector<core::Application> special_app_family(
    util::Rng& rng, std::size_t count, std::size_t min_stages,
    std::size_t max_stages);

/// Random platform of the requested class with `p` processors (and `apps`
/// applications' worth of in/out links when fully heterogeneous).
[[nodiscard]] core::Platform random_platform(util::Rng& rng, std::size_t p,
                                             std::size_t apps,
                                             core::PlatformClass cls,
                                             const PlatformParams& params);

/// Full random problem of the requested shape.
struct ProblemShape {
  std::size_t applications = 2;
  std::size_t processors = 6;
  core::PlatformClass platform_class = core::PlatformClass::FullyHomogeneous;
  core::CommModel comm = core::CommModel::Overlap;
  bool special_app = false;  ///< use the special-app application family
  AppParams app;
  PlatformParams platform;
};

[[nodiscard]] core::Problem random_problem(util::Rng& rng, const ProblemShape& shape);

}  // namespace pipeopt::gen
