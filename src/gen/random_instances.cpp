#include "gen/random_instances.hpp"

#include <stdexcept>
#include <string>

namespace pipeopt::gen {

using core::Application;
using core::Platform;
using core::PlatformClass;
using core::Problem;
using core::Processor;
using core::StageSpec;

Application random_application(util::Rng& rng, const AppParams& params) {
  const auto n = static_cast<std::size_t>(
      rng.uniform_int(static_cast<std::int64_t>(params.min_stages),
                      static_cast<std::int64_t>(params.max_stages)));
  std::vector<StageSpec> stages(n);
  for (StageSpec& s : stages) {
    s.compute = rng.log_uniform(params.min_compute, params.max_compute);
    s.output_size = rng.uniform(params.min_data, params.max_data);
  }
  const double input = rng.uniform(params.min_data, params.max_data);
  const double weight = params.weighted ? rng.uniform(0.5, 2.0) : 1.0;
  return Application(input, std::move(stages), weight);
}

std::vector<Application> random_applications(util::Rng& rng, std::size_t count,
                                             const AppParams& params) {
  std::vector<Application> apps;
  apps.reserve(count);
  for (std::size_t a = 0; a < count; ++a) {
    apps.push_back(random_application(rng, params));
  }
  return apps;
}

std::vector<Application> special_app_family(util::Rng& rng, std::size_t count,
                                            std::size_t min_stages,
                                            std::size_t max_stages) {
  std::vector<Application> apps;
  apps.reserve(count);
  for (std::size_t a = 0; a < count; ++a) {
    const auto n = static_cast<std::size_t>(
        rng.uniform_int(static_cast<std::int64_t>(min_stages),
                        static_cast<std::int64_t>(max_stages)));
    std::vector<StageSpec> stages(n, StageSpec{1.0, 0.0});
    apps.push_back(Application(0.0, std::move(stages)));
  }
  return apps;
}

namespace {

std::vector<double> random_speed_set(util::Rng& rng, const PlatformParams& params) {
  std::vector<double> speeds(params.modes);
  for (double& s : speeds) s = rng.log_uniform(params.min_speed, params.max_speed);
  return speeds;  // Processor sorts + dedups
}

}  // namespace

Platform random_platform(util::Rng& rng, std::size_t p, std::size_t apps,
                         PlatformClass cls, const PlatformParams& params) {
  if (p == 0) throw std::invalid_argument("random_platform: p must be > 0");
  std::vector<Processor> procs;
  procs.reserve(p);

  if (cls == PlatformClass::FullyHomogeneous) {
    const std::vector<double> speeds = random_speed_set(rng, params);
    for (std::size_t u = 0; u < p; ++u) {
      procs.emplace_back(speeds, params.static_energy, "P" + std::to_string(u));
    }
    return Platform(std::move(procs), params.uniform_bandwidth, params.alpha);
  }

  for (std::size_t u = 0; u < p; ++u) {
    procs.emplace_back(random_speed_set(rng, params), params.static_energy,
                       "P" + std::to_string(u));
  }
  if (cls == PlatformClass::CommHomogeneous) {
    return Platform(std::move(procs), params.uniform_bandwidth, params.alpha);
  }

  // Fully heterogeneous: symmetric random link matrix + per-app in/out links.
  std::vector<std::vector<double>> links(p, std::vector<double>(p, 1.0));
  for (std::size_t u = 0; u < p; ++u) {
    for (std::size_t v = u + 1; v < p; ++v) {
      const double bw = rng.uniform(params.min_bandwidth, params.max_bandwidth);
      links[u][v] = links[v][u] = bw;
    }
  }
  auto io_table = [&]() {
    std::vector<std::vector<double>> table(apps, std::vector<double>(p));
    for (auto& row : table) {
      for (double& bw : row) {
        bw = rng.uniform(params.min_bandwidth, params.max_bandwidth);
      }
    }
    return table;
  };
  return Platform(std::move(procs), std::move(links), io_table(), io_table(),
                  params.alpha);
}

Problem random_problem(util::Rng& rng, const ProblemShape& shape) {
  std::vector<Application> apps =
      shape.special_app
          ? special_app_family(rng, shape.applications, shape.app.min_stages,
                               shape.app.max_stages)
          : random_applications(rng, shape.applications, shape.app);
  Platform platform = random_platform(rng, shape.processors, shape.applications,
                                      shape.platform_class, shape.platform);
  return Problem(std::move(apps), std::move(platform), shape.comm);
}

}  // namespace pipeopt::gen
