#pragma once

/// \file workloads.hpp
/// Synthetic domain workloads shaped after the application classes the
/// paper's introduction motivates (video/audio coding, DSP, image
/// processing). Used by the example programs and the Pareto/heuristic
/// benches so they exercise realistic chain shapes rather than pure noise.

#include <cstddef>
#include <vector>

#include "core/application.hpp"
#include "core/platform.hpp"
#include "util/random.hpp"

namespace pipeopt::gen {

/// A 6-stage video transcoding chain: demux, decode, deinterlace, scale,
/// encode, mux. Heavy decode/encode stages, large frames between the
/// middle stages. `rate_weight` becomes W_a (e.g. frames-per-second goals).
[[nodiscard]] core::Application video_transcode_app(double frame_size,
                                                    double rate_weight = 1.0);

/// An n-tap DSP filter bank: uniform small stages, small samples, the shape
/// where one-to-one mappings shine.
[[nodiscard]] core::Application dsp_filter_app(std::size_t taps,
                                               double sample_size);

/// An image-processing chain (acquire, denoise, segment, feature-extract,
/// classify) with shrinking data sizes along the chain.
[[nodiscard]] core::Application image_pipeline_app(double image_size);

/// A small cluster of identical multi-modal nodes (fully homogeneous):
/// `modes` DVFS points spread geometrically between base_speed and
/// base_speed * turbo_factor.
[[nodiscard]] core::Platform homogeneous_cluster(std::size_t p, std::size_t modes,
                                                 double base_speed,
                                                 double turbo_factor,
                                                 double bandwidth,
                                                 double static_energy,
                                                 double alpha = 2.0);

/// A network of workstations (comm-homogeneous): per-node speed sets drawn
/// from a seeded RNG around distinct base speeds.
[[nodiscard]] core::Platform workstation_network(util::Rng& rng, std::size_t p,
                                                 std::size_t modes,
                                                 double bandwidth,
                                                 double static_energy,
                                                 double alpha = 2.0);

}  // namespace pipeopt::gen
