#include "gen/motivating_example.hpp"

namespace pipeopt::gen {

core::Problem motivating_example() {
  using core::Application;
  using core::Platform;
  using core::Processor;
  using core::StageSpec;

  std::vector<Application> apps;
  apps.push_back(Application(
      /*input_size=*/1.0,
      {StageSpec{3.0, 3.0}, StageSpec{2.0, 2.0}, StageSpec{1.0, 0.0}},
      /*weight=*/1.0, "App1"));
  apps.push_back(Application(
      /*input_size=*/0.0,
      {StageSpec{2.0, 2.0}, StageSpec{6.0, 1.0}, StageSpec{4.0, 1.0},
       StageSpec{2.0, 1.0}},
      /*weight=*/1.0, "App2"));

  std::vector<Processor> procs;
  procs.emplace_back(std::vector<double>{3.0, 6.0}, 0.0, "P1");
  procs.emplace_back(std::vector<double>{6.0, 8.0}, 0.0, "P2");
  procs.emplace_back(std::vector<double>{1.0, 6.0}, 0.0, "P3");

  Platform platform(std::move(procs), /*uniform_bandwidth=*/1.0, /*alpha=*/2.0);
  return core::Problem(std::move(apps), std::move(platform),
                       core::CommModel::Overlap);
}

}  // namespace pipeopt::gen
