#include "replication/replicated_mapping.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace pipeopt::replication {

ReplicatedMapping::ReplicatedMapping(std::vector<ReplicatedInterval> intervals)
    : intervals_(std::move(intervals)) {
  std::sort(intervals_.begin(), intervals_.end(),
            [](const ReplicatedInterval& a, const ReplicatedInterval& b) {
              if (a.app != b.app) return a.app < b.app;
              return a.first < b.first;
            });
}

std::vector<ReplicatedInterval> ReplicatedMapping::intervals_of(
    std::size_t app) const {
  std::vector<ReplicatedInterval> out;
  for (const ReplicatedInterval& iv : intervals_) {
    if (iv.app == app) out.push_back(iv);
  }
  return out;
}

std::size_t ReplicatedMapping::processor_count() const {
  std::size_t count = 0;
  for (const ReplicatedInterval& iv : intervals_) count += iv.procs.size();
  return count;
}

std::optional<std::string> ReplicatedMapping::validate(
    const core::Problem& problem) const {
  const auto& platform = problem.platform();
  std::set<std::size_t> used;
  std::vector<std::size_t> next_stage(problem.application_count(), 0);
  for (const ReplicatedInterval& iv : intervals_) {
    if (iv.app >= problem.application_count()) return "unknown application";
    const auto& app = problem.application(iv.app);
    if (iv.first > iv.last || iv.last >= app.stage_count()) {
      return "stage range out of bounds";
    }
    if (iv.procs.empty()) return "interval with no replica";
    for (std::size_t u : iv.procs) {
      if (u >= platform.processor_count()) return "unknown processor";
      if (iv.mode >= platform.processor(u).mode_count()) return "unknown mode";
      if (!used.insert(u).second) return "processor reused across replicas";
    }
    // Replicas must be identical for round-robin synchrony.
    const auto& first_proc = platform.processor(iv.procs.front());
    for (std::size_t u : iv.procs) {
      if (platform.processor(u).speeds() != first_proc.speeds()) {
        return "replica set spans non-identical processors";
      }
    }
    if (iv.first != next_stage[iv.app]) {
      return "intervals must tile the application in order";
    }
    next_stage[iv.app] = iv.last + 1;
  }
  for (std::size_t a = 0; a < problem.application_count(); ++a) {
    if (next_stage[a] != problem.application(a).stage_count()) {
      return "application not fully covered";
    }
  }
  return std::nullopt;
}

void ReplicatedMapping::validate_or_throw(const core::Problem& problem) const {
  if (auto reason = validate(problem)) {
    throw std::invalid_argument("invalid replicated mapping: " + *reason);
  }
}

namespace {

/// Cycle-time pieces of replicated interval j, already divided by r_j.
core::IntervalCost replicated_cost(const core::Problem& problem,
                                   std::span<const ReplicatedInterval> intervals,
                                   std::size_t j) {
  const ReplicatedInterval& iv = intervals[j];
  const auto& app = problem.application(iv.app);
  const auto& platform = problem.platform();
  const double speed = platform.processor(iv.procs.front()).speed(iv.mode);
  const auto r = static_cast<double>(iv.replication());

  // Uniform-bandwidth platforms only would make this exact; for generality
  // use the bandwidth between the lead replicas (round-robin pairings rotate
  // over replicas, so on heterogeneous links this is the lead-pair
  // approximation; the polynomial algorithm below is restricted to fully
  // homogeneous platforms where it is exact).
  const double in_bw =
      (j == 0) ? platform.in_bandwidth(iv.app, iv.procs.front())
               : platform.bandwidth(intervals[j - 1].procs.front(),
                                    iv.procs.front());
  const double out_bw = (j + 1 == intervals.size())
                            ? platform.out_bandwidth(iv.app, iv.procs.front())
                            : platform.bandwidth(iv.procs.front(),
                                                 intervals[j + 1].procs.front());
  core::IntervalCost cost;
  cost.in_comm = app.boundary_size(iv.first) / in_bw / r;
  cost.compute = app.total_compute(iv.first, iv.last) / speed / r;
  cost.out_comm = app.boundary_size(iv.last + 1) / out_bw / r;
  return cost;
}

}  // namespace

double replicated_period(const core::Problem& problem,
                         std::span<const ReplicatedInterval> intervals) {
  if (intervals.empty()) {
    throw std::invalid_argument("replicated_period: empty interval list");
  }
  double period = 0.0;
  for (std::size_t j = 0; j < intervals.size(); ++j) {
    period = std::max(period, replicated_cost(problem, intervals, j)
                                  .cycle_time(problem.comm_model()));
  }
  return period;
}

double replicated_latency(const core::Problem& problem,
                          std::span<const ReplicatedInterval> intervals) {
  if (intervals.empty()) {
    throw std::invalid_argument("replicated_latency: empty interval list");
  }
  // Eq. 5 through one replica per interval: undo the /r of the cost helper.
  double latency = 0.0;
  for (std::size_t j = 0; j < intervals.size(); ++j) {
    const auto r = static_cast<double>(intervals[j].replication());
    const core::IntervalCost cost = replicated_cost(problem, intervals, j);
    if (j == 0) latency += cost.in_comm * r;
    latency += (cost.compute + cost.out_comm) * r;
  }
  return latency;
}

core::Metrics evaluate(const core::Problem& problem,
                       const ReplicatedMapping& mapping, bool check_valid) {
  if (check_valid) mapping.validate_or_throw(problem);
  core::Metrics metrics;
  metrics.per_app.resize(problem.application_count());
  for (std::size_t a = 0; a < problem.application_count(); ++a) {
    const auto ivs = mapping.intervals_of(a);
    metrics.per_app[a].period = replicated_period(problem, ivs);
    metrics.per_app[a].latency = replicated_latency(problem, ivs);
    const double w = problem.application(a).weight();
    metrics.max_weighted_period =
        std::max(metrics.max_weighted_period, w * metrics.per_app[a].period);
    metrics.max_weighted_latency =
        std::max(metrics.max_weighted_latency, w * metrics.per_app[a].latency);
  }
  for (const ReplicatedInterval& iv : mapping.intervals()) {
    for (std::size_t u : iv.procs) {
      metrics.energy += problem.platform().processor_energy(u, iv.mode);
    }
  }
  return metrics;
}

}  // namespace pipeopt::replication
