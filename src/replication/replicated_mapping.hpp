#pragma once

/// \file replicated_mapping.hpp
/// Stage replication — the paper's §6 future work, modeled after
/// Benoit & Robert's replicated workflows [4]: an interval may be mapped
/// onto r identical processors that serve consecutive data sets round-robin.
///
/// Semantics (fully homogeneous platforms, where round-robin replicas stay
/// synchronized):
///  * each replica handles one data set in r, so *all three* cycle-time
///    pieces of the interval divide by r — each replica computes, receives
///    and sends only its own 1/r share (links are per processor pair, and
///    an upstream replica's out-port likewise only carries its own share);
///  * the period contribution of a replicated interval is cycle/r;
///  * latency is unchanged: every data set traverses exactly one replica
///    per interval;
///  * energy multiplies: every enrolled replica pays E_stat + s^α.

#include <cstddef>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/evaluation.hpp"
#include "core/problem.hpp"

namespace pipeopt::replication {

/// One interval of consecutive stages replicated over `procs`.
struct ReplicatedInterval {
  std::size_t app = 0;
  std::size_t first = 0;
  std::size_t last = 0;
  std::vector<std::size_t> procs;  ///< r >= 1 distinct processors
  std::size_t mode = 0;            ///< common speed mode of all replicas

  [[nodiscard]] std::size_t replication() const noexcept { return procs.size(); }
};

/// A complete replicated mapping (per-application tiling into replicated
/// intervals; processors pairwise distinct across the whole mapping).
class ReplicatedMapping {
 public:
  ReplicatedMapping() = default;
  explicit ReplicatedMapping(std::vector<ReplicatedInterval> intervals);

  [[nodiscard]] std::span<const ReplicatedInterval> intervals() const noexcept {
    return intervals_;
  }
  [[nodiscard]] std::vector<ReplicatedInterval> intervals_of(std::size_t app) const;
  [[nodiscard]] std::size_t processor_count() const;

  /// std::nullopt when valid, else a reason.
  [[nodiscard]] std::optional<std::string> validate(const core::Problem& problem) const;
  void validate_or_throw(const core::Problem& problem) const;

 private:
  std::vector<ReplicatedInterval> intervals_;  ///< sorted by (app, first)
};

/// Period of one application under replication (both communication models;
/// every cycle-time piece of interval j divides by r_j).
[[nodiscard]] double replicated_period(const core::Problem& problem,
                                       std::span<const ReplicatedInterval> intervals);

/// Latency (unchanged by replication; Eq. 5 on one replica per interval).
[[nodiscard]] double replicated_latency(const core::Problem& problem,
                                        std::span<const ReplicatedInterval> intervals);

/// Full evaluation (weighted maxima + energy over all replicas).
[[nodiscard]] core::Metrics evaluate(const core::Problem& problem,
                                     const ReplicatedMapping& mapping,
                                     bool check_valid = true);

}  // namespace pipeopt::replication
