#include "replication/replicated_period.hpp"

#include <algorithm>
#include <stdexcept>

#include "algorithms/processor_allocation.hpp"
#include "util/numeric.hpp"

namespace pipeopt::replication {

ReplicatedPeriodDp::ReplicatedPeriodDp(const core::Application& app,
                                       double speed, double bandwidth,
                                       core::CommModel comm,
                                       std::size_t max_procs)
    : weight_(app.weight()),
      speed_(speed),
      bandwidth_(bandwidth),
      comm_(comm),
      n_(app.stage_count()),
      max_q_(max_procs) {
  if (!(speed_ > 0.0) || !(bandwidth_ > 0.0)) {
    throw std::invalid_argument("ReplicatedPeriodDp: speed/bandwidth must be > 0");
  }
  if (max_procs == 0) {
    throw std::invalid_argument("ReplicatedPeriodDp: needs >= 1 processor");
  }
  compute_prefix_.assign(n_ + 1, 0.0);
  boundary_.assign(n_ + 1, 0.0);
  for (std::size_t k = 0; k < n_; ++k) {
    compute_prefix_[k + 1] = compute_prefix_[k] + app.compute(k);
  }
  for (std::size_t i = 0; i <= n_; ++i) boundary_[i] = app.boundary_size(i);

  table_.assign(max_q_, std::vector<double>(n_ + 1, util::kInfinity));
  split_.assign(max_q_, std::vector<std::size_t>(n_ + 1, 0));
  replicas_.assign(max_q_, std::vector<std::size_t>(n_ + 1, 1));
  for (std::size_t q = 0; q < max_q_; ++q) table_[q][0] = 0.0;

  for (std::size_t q = 0; q < max_q_; ++q) {  // at most q+1 processors
    for (std::size_t i = 1; i <= n_; ++i) {
      double best = util::kInfinity;
      std::size_t best_j = 0;
      std::size_t best_r = 1;
      for (std::size_t j = 0; j < i; ++j) {
        const double tail = interval_cost(j, i - 1);
        // r replicas for the tail interval; prefix gets q+1-r processors.
        for (std::size_t r = 1; r <= q + 1; ++r) {
          const double prefix =
              (j == 0) ? 0.0
                       : ((q + 1 - r) == 0 ? util::kInfinity
                                           : table_[q - r][j]);
          if (!std::isfinite(prefix)) continue;
          const double value =
              std::max(prefix, tail / static_cast<double>(r));
          if (value < best) {
            best = value;
            best_j = j;
            best_r = r;
          }
        }
      }
      table_[q][i] = best;
      split_[q][i] = best_j;
      replicas_[q][i] = best_r;
    }
  }
}

double ReplicatedPeriodDp::interval_cost(std::size_t first,
                                         std::size_t last) const {
  const double in = boundary_[first] / bandwidth_;
  const double comp = (compute_prefix_[last + 1] - compute_prefix_[first]) / speed_;
  const double out = boundary_[last + 1] / bandwidth_;
  return comm_ == core::CommModel::Overlap ? std::max({in, comp, out})
                                           : in + comp + out;
}

double ReplicatedPeriodDp::min_period_by_count(std::size_t q) const {
  if (q == 0) return util::kInfinity;
  return table_[std::min(q, max_q_) - 1][n_];
}

double ReplicatedPeriodDp::weighted_min_period_by_count(std::size_t q) const {
  return weight_ * min_period_by_count(q);
}

ReplicatedPeriodDp::Plan ReplicatedPeriodDp::optimal_plan(std::size_t q) const {
  if (q == 0) throw std::invalid_argument("optimal_plan: q must be >= 1");
  Plan plan;
  std::size_t i = n_;
  std::size_t level = std::min(q, max_q_) - 1;
  while (i > 0) {
    plan.ends.push_back(i - 1);
    plan.replicas.push_back(replicas_[level][i]);
    const std::size_t j = split_[level][i];
    const std::size_t r = replicas_[level][i];
    i = j;
    level = (level + 1 > r) ? level - r : 0;
  }
  std::reverse(plan.ends.begin(), plan.ends.end());
  std::reverse(plan.replicas.begin(), plan.replicas.end());
  return plan;
}

std::optional<ReplicatedSolution> replicated_min_period(
    const core::Problem& problem) {
  if (problem.platform().classify() != core::PlatformClass::FullyHomogeneous) {
    throw std::invalid_argument(
        "replicated period minimization: implemented for fully homogeneous "
        "platforms (identical replicas; see [4] for heterogeneous round-robin)");
  }
  const auto& platform = problem.platform();
  const std::size_t p = platform.processor_count();
  const double speed = platform.processor(0).max_speed();
  const double bw = platform.uniform_bandwidth();

  std::vector<ReplicatedPeriodDp> dps;
  dps.reserve(problem.application_count());
  for (const auto& app : problem.applications()) {
    dps.emplace_back(app, speed, bw, problem.comm_model(), p);
  }
  const auto value = [&](std::size_t a, std::size_t k) {
    return dps[a].weighted_min_period_by_count(k);
  };
  const auto allocation =
      algorithms::allocate_processors(problem.application_count(), p, value);
  if (!allocation) return std::nullopt;

  std::vector<ReplicatedInterval> intervals;
  std::size_t next_proc = 0;
  const std::size_t max_mode = platform.processor(0).max_mode();
  for (std::size_t a = 0; a < problem.application_count(); ++a) {
    const auto plan = dps[a].optimal_plan(allocation->count[a]);
    std::size_t first = 0;
    for (std::size_t j = 0; j < plan.ends.size(); ++j) {
      ReplicatedInterval iv;
      iv.app = a;
      iv.first = first;
      iv.last = plan.ends[j];
      iv.mode = max_mode;
      for (std::size_t r = 0; r < plan.replicas[j]; ++r) {
        iv.procs.push_back(next_proc++);
      }
      intervals.push_back(std::move(iv));
      first = plan.ends[j] + 1;
    }
  }
  ReplicatedSolution solution;
  solution.value = allocation->objective;
  solution.mapping = ReplicatedMapping(std::move(intervals));
  return solution;
}

}  // namespace pipeopt::replication
