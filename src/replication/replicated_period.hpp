#pragma once

/// \file replicated_period.hpp
/// Period minimization with replication on fully homogeneous platforms —
/// the algorithmic side of the §6 extension.
///
/// Single application: extend the chains-on-chains DP with a replica-count
/// choice per interval:
///   T(i, q) = min_{j<i, 1<=r<=q} max( T(j, q-r), cycle(j+1, i) / r )
/// (O(n²p²)). T(·, q) is non-increasing in q, so Algorithm 2 lifts the DP
/// to several concurrent applications unchanged.

#include <cstddef>
#include <optional>
#include <vector>

#include "core/problem.hpp"
#include "replication/replicated_mapping.hpp"

namespace pipeopt::replication {

/// DP over one application on identical processors with replication.
class ReplicatedPeriodDp {
 public:
  ReplicatedPeriodDp(const core::Application& app, double speed,
                     double bandwidth, core::CommModel comm,
                     std::size_t max_procs);

  /// Optimal period using at most q processors (replicas included).
  [[nodiscard]] double min_period_by_count(std::size_t q) const;
  [[nodiscard]] double weighted_min_period_by_count(std::size_t q) const;

  /// Optimal plan for at most q processors: per interval, its inclusive
  /// last stage and replica count.
  struct Plan {
    std::vector<std::size_t> ends;
    std::vector<std::size_t> replicas;
  };
  [[nodiscard]] Plan optimal_plan(std::size_t q) const;

 private:
  [[nodiscard]] double interval_cost(std::size_t first, std::size_t last) const;

  std::vector<double> compute_prefix_;
  std::vector<double> boundary_;
  double weight_;
  double speed_;
  double bandwidth_;
  core::CommModel comm_;
  std::size_t n_;
  std::size_t max_q_;
  // table_[q][i]: stages 1..i with at most q+1 processors.
  std::vector<std::vector<double>> table_;
  // choice: split point and replica count realizing table_[q][i].
  std::vector<std::vector<std::size_t>> split_;
  std::vector<std::vector<std::size_t>> replicas_;
};

/// Result of the multi-application optimization.
struct ReplicatedSolution {
  double value = 0.0;
  ReplicatedMapping mapping;
};

/// Minimum max_a W_a·T_a over replicated interval mappings on a fully
/// homogeneous platform (processors at maximum speed).
/// \throws std::invalid_argument unless fully homogeneous.
[[nodiscard]] std::optional<ReplicatedSolution> replicated_min_period(
    const core::Problem& problem);

}  // namespace pipeopt::replication
