#include "obs/trace.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <stdexcept>

#include "io/json.hpp"
#include "util/fdio.hpp"

namespace pipeopt::obs {

namespace {

/// splitmix64 — a cheap, well-mixed 64-bit permutation.
std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

std::string generate_trace_id() {
  // Process-unique without coordination: a per-process seed (pid + clock at
  // first use) mixed with a monotone counter. Not cryptographic — ids only
  // need to be distinct within a fleet's trace logs.
  static const std::uint64_t seed =
      mix64(static_cast<std::uint64_t>(::getpid()) ^
            static_cast<std::uint64_t>(
                std::chrono::steady_clock::now().time_since_epoch().count())
                << 17);
  static std::atomic<std::uint64_t> counter{0};
  const std::uint64_t value =
      mix64(seed ^ counter.fetch_add(1, std::memory_order_relaxed));
  static const char* kHex = "0123456789abcdef";
  std::string id(16, '0');
  for (std::size_t i = 0; i < 16; ++i) {
    id[i] = kHex[(value >> (60 - 4 * i)) & 0xF];
  }
  return id;
}

TraceContext::TraceContext(std::string id, MetricsRegistry* registry)
    : id_(id.empty() ? generate_trace_id() : std::move(id)),
      registry_(registry) {}

void TraceContext::record(const std::string& phase,
                          std::uint64_t duration_us) {
  if (registry_ != nullptr) {
    registry_->histogram("phase." + phase).record_us(duration_us);
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, total] : spans_) {
    if (name == phase) {
      total += duration_us;
      return;
    }
  }
  spans_.emplace_back(phase, duration_us);
}

std::vector<std::pair<std::string, std::uint64_t>> TraceContext::spans()
    const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return spans_;
}

TraceLog::TraceLog(const std::string& path) {
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (fd_ < 0) {
    throw std::runtime_error("cannot open trace log '" + path + "'");
  }
}

TraceLog::~TraceLog() {
  if (fd_ >= 0) ::close(fd_);
}

void TraceLog::write(
    const TraceContext& context, const std::string& type,
    const std::string& request_id, std::uint64_t total_us,
    const std::vector<std::pair<std::string, std::string>>& extra) {
  io::FlatJsonWriter out;
  out.field("trace", context.id());
  out.field("type", type);
  if (!request_id.empty()) out.field("id", request_id);
  out.field("total_us", std::to_string(total_us));
  for (const auto& [phase, us] : context.spans()) {
    out.field("span." + phase + "_us", std::to_string(us));
  }
  for (const auto& [key, value] : extra) out.field(key, value);
  const std::string line = std::move(out).str();
  const std::lock_guard<std::mutex> lock(mutex_);
  util::write_line(fd_, line);
}

}  // namespace pipeopt::obs
