#pragma once

/// \file metrics.hpp
/// The metrics half of the observability layer (src/obs): named counters,
/// gauges and fixed-bucket log-scale latency histograms behind one
/// `MetricsRegistry`, exposed over the wire by the `{"type":"metrics"}`
/// request (docs/PROTOCOL.md).
///
/// Design constraints, in order:
///
///  * **Hot-path recording is lock-free.** `LatencyHistogram::record_us`
///    and `Counter::add` touch striped relaxed atomics only — many session
///    and worker threads record into one registry while others snapshot
///    it. The registry's name→metric map takes a mutex on *creation* only;
///    steady-state callers hold direct references.
///  * **Snapshots are fleet-mergeable.** `snapshot()` returns ordered wire
///    fields whose values are all decimal `uint64` counters, so
///    `io::merge_stats_fields` sums them across a shard fleet and a
///    histogram merges bucket-wise for free (its buckets are just fields).
///    Quantiles are NOT part of the summable snapshot — they are *derived*
///    fields (suffix `.p50_us`/`.p90_us`/`.p99_us`) appended by
///    `with_quantiles` after any merge, and `merge_metrics_fields` strips
///    them before summing so a merging tier can never add two medians.
///  * **Absence is information.** A metric that was never recorded emits
///    no fields at all (mirroring the stats line's cache-off rule): a
///    cache-off fleet has no `phase.cache_lookup.*` fields, not zeros.
///
/// Histogram buckets are powers of two in microseconds: bucket 0 holds
/// `0 µs`, bucket i≥1 holds `[2^(i-1), 2^i) µs`, and the last bucket
/// absorbs everything above — 40 buckets span sub-microsecond to ~6 days,
/// ~5% worst-case quantile error per decade, fixed memory. Quantile
/// interpolation inside a bucket goes through `util::weighted_quantile`,
/// the same rank convention as `util::Summary` (one home for the math).

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace pipeopt::obs {

/// Ordered wire fields, structurally identical to io::JsonFields.
using MetricFields = std::vector<std::pair<std::string, std::string>>;

/// Monotone event counter (lock-free).
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins level (lock-free). Merged across a fleet by summing,
/// which is the useful reading for the levels we expose (in-flight work).
class Gauge {
 public:
  void set(std::uint64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Fixed-bucket log2-scale latency histogram over microseconds, striped
/// across cache lines so concurrent recorders do not contend.
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 40;

  /// Upper bound of bucket `i` in µs (2^i; bucket 0's range is just {0}).
  [[nodiscard]] static double bucket_upper_us(std::size_t i) noexcept;
  /// The bucket `us` falls into.
  [[nodiscard]] static std::size_t bucket_index(std::uint64_t us) noexcept;

  void record_us(std::uint64_t us) noexcept;

  /// One coherent-enough view (stripes are summed field by field; a racing
  /// record may straddle count/sum, which is fine for monitoring).
  struct Snapshot {
    std::uint64_t count = 0;
    std::uint64_t sum_us = 0;
    std::array<std::uint64_t, kBuckets> buckets{};

    /// q-quantile in µs via util::weighted_quantile over the buckets.
    [[nodiscard]] double quantile_us(double q) const;
  };
  [[nodiscard]] Snapshot snapshot() const;

 private:
  /// One stripe per recorder group; alignas keeps stripes on distinct
  /// cache lines so fetch_adds from different threads do not false-share.
  struct alignas(64) Stripe {
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum_us{0};
    std::array<std::atomic<std::uint64_t>, kBuckets> buckets{};
  };
  static constexpr std::size_t kStripes = 8;

  [[nodiscard]] Stripe& stripe_for_thread() noexcept;

  std::array<Stripe, kStripes> stripes_;
};

/// Process-wide (or per-server — tests run several) registry of named
/// metrics. References returned by the accessors are stable for the
/// registry's lifetime (metrics are never removed).
class MetricsRegistry {
 public:
  /// Find-or-create; creation order is snapshot emission order.
  [[nodiscard]] Counter& counter(const std::string& name);
  [[nodiscard]] Gauge& gauge(const std::string& name);
  [[nodiscard]] LatencyHistogram& histogram(const std::string& name);

  /// Ordered summable wire fields (see file comment): per counter `name`,
  /// per gauge `name`, per histogram with at least one sample `name.n`,
  /// `name.sum_us` and one `name.b<i>` per non-zero bucket. Never-recorded
  /// histograms and zero counters emit nothing.
  [[nodiscard]] MetricFields snapshot() const;

 private:
  enum class Kind { Counter, Gauge, Histogram };
  struct Entry {
    std::string name;
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<LatencyHistogram> histogram;
  };

  Entry& find_or_create(const std::string& name, Kind kind);

  mutable std::mutex mutex_;  ///< guards the entries vector, not the metrics
  std::vector<std::unique_ptr<Entry>> entries_;
};

/// True for the derived (non-summable) quantile fields `with_quantiles`
/// appends: keys ending in ".p50_us", ".p90_us" or ".p99_us".
[[nodiscard]] bool is_derived_metric_field(const std::string& key) noexcept;

/// Appends the derived p50/p90/p99 fields after each histogram group of
/// `summable` (a group is the `name.n` / `name.sum_us` / `name.b<i>` run a
/// snapshot or a field-wise merge produced). Input fields pass through
/// untouched and in order.
[[nodiscard]] MetricFields with_quantiles(const MetricFields& summable);

/// Fleet merge of metrics field lists: strips derived quantile fields from
/// every line, sums the rest via io::merge_stats_fields (histograms
/// thereby merge bucket-wise), then re-derives the quantiles from the
/// merged buckets. \throws io::ParseError on a non-numeric summable value.
[[nodiscard]] MetricFields merge_metrics_fields(
    const std::vector<MetricFields>& lines);

}  // namespace pipeopt::obs
