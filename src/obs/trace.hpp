#pragma once

/// \file trace.hpp
/// The tracing half of the observability layer (src/obs): a request-scoped
/// `TraceContext` that carries one trace id across tiers and aggregates
/// the request's phase spans, RAII `SpanTimer`s that record into it, and a
/// `TraceLog` that appends one JSONL line per completed request.
///
/// The phase vocabulary, tier by tier (docs/PROTOCOL.md):
///
///  * `parse`        — wire line → typed request (server session)
///  * `cache_lookup` — solve-cache key + probe (executor, cache on only)
///  * `queue_wait`   — enqueue → a pool worker picks the job up (executor)
///  * `bind`         — per-instance plan bind, Eq. 6 weight resolution
///                     included (SolvePlan constructor)
///  * `solve`        — plan execution: the solver ladder itself
///                     (SolvePlan::run)
///  * `format`       — result → wire bytes + write (server session)
///  * `relay`        — shard forward + response relay (router)
///
/// The id travels on the wire as the optional `"trace"` request field; the
/// router generates one when absent and splices it into the forwarded
/// line, so one id stitches client → router → shard and a fleet's trace
/// logs join on it. Responses never carry the id — solve/pareto/stats
/// bytes stay identical with tracing on or off.
///
/// A null `TraceContext*` disables recording at every site (the plan and
/// executor instrumentation is span-scoped: no context, no clock reads on
/// their paths beyond two steady_clock calls per request phase).
/// `TraceContext::record` also feeds its registry's `phase.<name>`
/// histogram, so fleet-level phase latency distributions exist even when
/// no trace log is configured.

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace pipeopt::obs {

/// A fresh 16-hex-char trace id (process-unique, seeded per process).
[[nodiscard]] std::string generate_trace_id();

/// One request's trace state: the id plus per-phase summed durations.
/// Thread-safe — session and pool-worker threads record concurrently.
class TraceContext {
 public:
  /// Uses `id` when non-empty, otherwise generates one. `registry` (may be
  /// null) additionally receives every span in its `phase.<name>`
  /// histogram.
  explicit TraceContext(std::string id, MetricsRegistry* registry = nullptr);

  TraceContext(const TraceContext&) = delete;
  TraceContext& operator=(const TraceContext&) = delete;

  [[nodiscard]] const std::string& id() const noexcept { return id_; }

  /// Adds `duration_us` to `phase`'s total (first-appearance order).
  void record(const std::string& phase, std::uint64_t duration_us);

  /// Summed duration per phase, in first-recorded order.
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>> spans()
      const;

 private:
  std::string id_;
  MetricsRegistry* registry_;
  mutable std::mutex mutex_;
  std::vector<std::pair<std::string, std::uint64_t>> spans_;
};

/// RAII span: records the scope's wall time into the context on
/// destruction. A null context makes construction and destruction no-ops.
class SpanTimer {
 public:
  SpanTimer(TraceContext* context, const char* phase) noexcept
      : context_(context), phase_(phase) {
    if (context_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~SpanTimer() {
    if (context_ == nullptr) return;
    const auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
        std::chrono::steady_clock::now() - start_);
    context_->record(phase_, static_cast<std::uint64_t>(elapsed.count()));
  }

  SpanTimer(const SpanTimer&) = delete;
  SpanTimer& operator=(const SpanTimer&) = delete;

 private:
  TraceContext* context_;
  const char* phase_;
  std::chrono::steady_clock::time_point start_;
};

/// Append-only JSONL span log shared by every session thread of one
/// process. One line per completed request:
/// `{"trace":...,"type":...,["id":...,]"total_us":...,
///   "span.<phase>_us":...,...[,extra fields]}`.
class TraceLog {
 public:
  /// Opens `path` for appending. \throws std::runtime_error when the file
  /// cannot be opened.
  explicit TraceLog(const std::string& path);
  ~TraceLog();

  TraceLog(const TraceLog&) = delete;
  TraceLog& operator=(const TraceLog&) = delete;

  /// Appends one span line for `context`. `request_id` is omitted when
  /// empty; `extra` fields (e.g. the router's shard index) go last.
  void write(const TraceContext& context, const std::string& type,
             const std::string& request_id, std::uint64_t total_us,
             const std::vector<std::pair<std::string, std::string>>& extra = {});

 private:
  std::mutex mutex_;
  int fd_ = -1;
};

}  // namespace pipeopt::obs
