#include "obs/metrics.hpp"

#include <bit>
#include <cmath>
#include <thread>

#include "io/json.hpp"
#include "io/stats_io.hpp"
#include "util/stats.hpp"

namespace pipeopt::obs {

namespace {

/// Parses the "<prefix>.b<index>" tail of a bucket field; npos-style -1
/// when `key` is not a bucket field of `prefix`.
int bucket_suffix(const std::string& key, const std::string& prefix) {
  const std::size_t base = prefix.size();
  if (key.size() <= base + 2 || key.compare(0, base, prefix) != 0) return -1;
  if (key[base] != '.' || key[base + 1] != 'b') return -1;
  int index = 0;
  for (std::size_t i = base + 2; i < key.size(); ++i) {
    if (key[i] < '0' || key[i] > '9') return -1;
    index = index * 10 + (key[i] - '0');
  }
  if (index < 0 || static_cast<std::size_t>(index) >=
                       static_cast<int>(LatencyHistogram::kBuckets)) {
    return -1;
  }
  return index;
}

bool ends_with(const std::string& text, const char* suffix) {
  const std::size_t n = std::char_traits<char>::length(suffix);
  return text.size() >= n && text.compare(text.size() - n, n, suffix) == 0;
}

}  // namespace

double LatencyHistogram::bucket_upper_us(std::size_t i) noexcept {
  return std::ldexp(1.0, static_cast<int>(i));  // 2^i
}

std::size_t LatencyHistogram::bucket_index(std::uint64_t us) noexcept {
  if (us == 0) return 0;
  const auto width = static_cast<std::size_t>(std::bit_width(us));
  return width < kBuckets ? width : kBuckets - 1;
}

LatencyHistogram::Stripe& LatencyHistogram::stripe_for_thread() noexcept {
  // A thread sticks to one stripe for the histogram's lifetime; hashing the
  // id spreads a pool's workers across the stripes.
  const std::size_t h =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  return stripes_[h % kStripes];
}

void LatencyHistogram::record_us(std::uint64_t us) noexcept {
  Stripe& stripe = stripe_for_thread();
  stripe.count.fetch_add(1, std::memory_order_relaxed);
  stripe.sum_us.fetch_add(us, std::memory_order_relaxed);
  stripe.buckets[bucket_index(us)].fetch_add(1, std::memory_order_relaxed);
}

LatencyHistogram::Snapshot LatencyHistogram::snapshot() const {
  Snapshot snap;
  for (const Stripe& stripe : stripes_) {
    snap.count += stripe.count.load(std::memory_order_relaxed);
    snap.sum_us += stripe.sum_us.load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < kBuckets; ++i) {
      snap.buckets[i] += stripe.buckets[i].load(std::memory_order_relaxed);
    }
  }
  return snap;
}

double LatencyHistogram::Snapshot::quantile_us(double q) const {
  std::array<double, kBuckets> uppers;
  for (std::size_t i = 0; i < kBuckets; ++i) uppers[i] = bucket_upper_us(i);
  return util::weighted_quantile(buckets, uppers, /*lower0=*/0.0, q);
}

MetricsRegistry::Entry& MetricsRegistry::find_or_create(const std::string& name,
                                                        Kind kind) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& entry : entries_) {
    if (entry->name == name && entry->kind == kind) return *entry;
  }
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->kind = kind;
  switch (kind) {
    case Kind::Counter: entry->counter = std::make_unique<Counter>(); break;
    case Kind::Gauge: entry->gauge = std::make_unique<Gauge>(); break;
    case Kind::Histogram:
      entry->histogram = std::make_unique<LatencyHistogram>();
      break;
  }
  entries_.push_back(std::move(entry));
  return *entries_.back();
}

Counter& MetricsRegistry::counter(const std::string& name) {
  return *find_or_create(name, Kind::Counter).counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  return *find_or_create(name, Kind::Gauge).gauge;
}

LatencyHistogram& MetricsRegistry::histogram(const std::string& name) {
  return *find_or_create(name, Kind::Histogram).histogram;
}

MetricFields MetricsRegistry::snapshot() const {
  // Copy the entry pointers under the lock, read the metrics outside it:
  // entries are never removed, so the pointers stay valid.
  std::vector<const Entry*> entries;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    entries.reserve(entries_.size());
    for (const auto& entry : entries_) entries.push_back(entry.get());
  }
  MetricFields fields;
  for (const Entry* entry : entries) {
    switch (entry->kind) {
      case Kind::Counter: {
        const std::uint64_t value = entry->counter->value();
        if (value > 0) {
          fields.emplace_back(entry->name, std::to_string(value));
        }
        break;
      }
      case Kind::Gauge:
        fields.emplace_back(entry->name,
                            std::to_string(entry->gauge->value()));
        break;
      case Kind::Histogram: {
        const LatencyHistogram::Snapshot snap = entry->histogram->snapshot();
        if (snap.count == 0) break;
        fields.emplace_back(entry->name + ".n", std::to_string(snap.count));
        fields.emplace_back(entry->name + ".sum_us",
                            std::to_string(snap.sum_us));
        for (std::size_t i = 0; i < LatencyHistogram::kBuckets; ++i) {
          if (snap.buckets[i] == 0) continue;
          fields.emplace_back(entry->name + ".b" + std::to_string(i),
                              std::to_string(snap.buckets[i]));
        }
        break;
      }
    }
  }
  return fields;
}

bool is_derived_metric_field(const std::string& key) noexcept {
  return ends_with(key, ".p50_us") || ends_with(key, ".p90_us") ||
         ends_with(key, ".p99_us");
}

MetricFields with_quantiles(const MetricFields& summable) {
  // A histogram group is identified by its "<name>.n" + "<name>.sum_us"
  // pair; its "<name>.b<i>" bucket fields may sit anywhere in the list (a
  // field-wise merge appends a shard's novel buckets at the tail, so
  // groups are not necessarily contiguous). Buckets are therefore gathered
  // by prefix over the whole list, and the derived fields are emitted
  // right after the group's last field.
  struct Group {
    std::string prefix;
    bool has_n = false, has_sum = false;
    std::array<std::uint64_t, LatencyHistogram::kBuckets> buckets{};
    std::size_t last_index = 0;
  };
  std::vector<Group> groups;
  const auto group_for = [&](const std::string& prefix) -> Group& {
    for (Group& group : groups) {
      if (group.prefix == prefix) return group;
    }
    groups.push_back(Group{prefix, false, false, {}, 0});
    return groups.back();
  };
  for (std::size_t i = 0; i < summable.size(); ++i) {
    const std::string& key = summable[i].first;
    if (ends_with(key, ".n")) {
      Group& group = group_for(key.substr(0, key.size() - 2));
      group.has_n = true;
      group.last_index = std::max(group.last_index, i);
    } else if (ends_with(key, ".sum_us")) {
      Group& group = group_for(key.substr(0, key.size() - 7));
      group.has_sum = true;
      group.last_index = std::max(group.last_index, i);
    } else if (const std::size_t dot_b = key.rfind(".b");
               dot_b != std::string::npos && dot_b > 0) {
      const std::string prefix = key.substr(0, dot_b);
      const int index = bucket_suffix(key, prefix);
      if (index >= 0) {
        Group& group = group_for(prefix);
        group.buckets[static_cast<std::size_t>(index)] +=
            io::parse_wire_number<std::uint64_t>(key, summable[i].second, 1);
        group.last_index = std::max(group.last_index, i);
      }
    }
  }
  MetricFields out;
  out.reserve(summable.size() + groups.size() * 3);
  for (std::size_t i = 0; i < summable.size(); ++i) {
    out.push_back(summable[i]);
    for (const Group& group : groups) {
      if (group.last_index != i || !group.has_n || !group.has_sum) continue;
      LatencyHistogram::Snapshot snap;
      snap.buckets = group.buckets;
      for (const std::uint64_t b : group.buckets) snap.count += b;
      const auto derived = [&](const char* tag, double q) {
        out.emplace_back(group.prefix + tag,
                         io::format_double_exact(snap.quantile_us(q)));
      };
      derived(".p50_us", 0.50);
      derived(".p90_us", 0.90);
      derived(".p99_us", 0.99);
    }
  }
  return out;
}

MetricFields merge_metrics_fields(const std::vector<MetricFields>& lines) {
  std::vector<MetricFields> summable;
  summable.reserve(lines.size());
  for (const MetricFields& line : lines) {
    MetricFields kept;
    kept.reserve(line.size());
    for (const auto& field : line) {
      if (!is_derived_metric_field(field.first)) kept.push_back(field);
    }
    summable.push_back(std::move(kept));
  }
  return with_quantiles(io::merge_stats_fields(summable));
}

}  // namespace pipeopt::obs
