#pragma once

/// \file fdio.hpp
/// Newline-framed I/O over raw file descriptors — the one line
/// reader/writer every JSONL wire endpoint shares (server sessions, the
/// CLI client, tests and benches), so framing behavior (EINTR retries,
/// final unterminated lines, partial writes) cannot drift between copies.

#include <unistd.h>

#include <cerrno>
#include <cstddef>
#include <functional>
#include <string>

namespace pipeopt::util {

/// Optional replacements for the raw read/write syscalls underneath the
/// framing layer. The fault-injection shim (src/net/fault.hpp) supplies a
/// hooked pair to provoke truncation/partial-write/delay failures on
/// exactly the code paths production traffic uses; passing nullptr (the
/// default everywhere) costs nothing and keeps plain syscalls.
struct IoHooks {
  std::function<ssize_t(int fd, void* buf, std::size_t len)> read;
  std::function<ssize_t(int fd, const void* buf, std::size_t len)> write;
};

/// Blocking buffered line reader. Reads are retried on EINTR; any other
/// read failure (including a receive timeout on a socket) ends the stream
/// like EOF.
class FdLineReader {
 public:
  explicit FdLineReader(int fd, const IoHooks* hooks = nullptr)
      : fd_(fd), hooks_(hooks) {}

  /// Next '\n'-terminated line (terminator stripped; a final unterminated
  /// line is returned too); false on end of stream with nothing pending.
  bool next_line(std::string& line) {
    for (;;) {
      const auto newline = buffer_.find('\n');
      if (newline != std::string::npos) {
        line.assign(buffer_, 0, newline);
        buffer_.erase(0, newline + 1);
        last_terminated_ = true;
        return true;
      }
      char chunk[4096];
      const ssize_t n = (hooks_ != nullptr && hooks_->read)
                            ? hooks_->read(fd_, chunk, sizeof chunk)
                            : ::read(fd_, chunk, sizeof chunk);
      if (n > 0) {
        buffer_.append(chunk, static_cast<std::size_t>(n));
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (buffer_.empty()) return false;
      line = std::move(buffer_);
      buffer_.clear();
      last_terminated_ = false;
      return true;
    }
  }

  /// True when input beyond the current line is already buffered (for the
  /// server: the client is pipelining, so it is demonstrably alive).
  [[nodiscard]] bool buffered() const noexcept { return !buffer_.empty(); }

  /// Whether the line most recently returned by next_line carried its
  /// '\n' frame. A false value means the stream died mid-line: the bytes
  /// are a torn prefix, not a complete wire message, and relays/clients
  /// must treat them as a transport failure rather than parse them.
  [[nodiscard]] bool last_terminated() const noexcept {
    return last_terminated_;
  }

 private:
  int fd_;
  const IoHooks* hooks_;
  std::string buffer_;
  bool last_terminated_ = true;
};

/// Writes `line` plus the '\n' frame, retrying on EINTR and short writes;
/// false when the peer is gone (for sockets, make sure SIGPIPE is ignored
/// so a vanished reader surfaces here instead of killing the process).
inline bool write_line(int fd, std::string line,
                       const IoHooks* hooks = nullptr) {
  line += '\n';
  std::size_t off = 0;
  while (off < line.size()) {
    const ssize_t n = (hooks != nullptr && hooks->write)
                          ? hooks->write(fd, line.data() + off,
                                         line.size() - off)
                          : ::write(fd, line.data() + off, line.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace pipeopt::util
