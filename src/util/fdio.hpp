#pragma once

/// \file fdio.hpp
/// Newline-framed I/O over raw file descriptors — the one line
/// reader/writer every JSONL wire endpoint shares (server sessions, the
/// CLI client, tests and benches), so framing behavior (EINTR retries,
/// final unterminated lines, partial writes) cannot drift between copies.

#include <unistd.h>

#include <cerrno>
#include <cstddef>
#include <string>

namespace pipeopt::util {

/// Blocking buffered line reader. Reads are retried on EINTR; any other
/// read failure (including a receive timeout on a socket) ends the stream
/// like EOF.
class FdLineReader {
 public:
  explicit FdLineReader(int fd) : fd_(fd) {}

  /// Next '\n'-terminated line (terminator stripped; a final unterminated
  /// line is returned too); false on end of stream with nothing pending.
  bool next_line(std::string& line) {
    for (;;) {
      const auto newline = buffer_.find('\n');
      if (newline != std::string::npos) {
        line.assign(buffer_, 0, newline);
        buffer_.erase(0, newline + 1);
        return true;
      }
      char chunk[4096];
      const ssize_t n = ::read(fd_, chunk, sizeof chunk);
      if (n > 0) {
        buffer_.append(chunk, static_cast<std::size_t>(n));
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (buffer_.empty()) return false;
      line = std::move(buffer_);
      buffer_.clear();
      return true;
    }
  }

  /// True when input beyond the current line is already buffered (for the
  /// server: the client is pipelining, so it is demonstrably alive).
  [[nodiscard]] bool buffered() const noexcept { return !buffer_.empty(); }

 private:
  int fd_;
  std::string buffer_;
};

/// Writes `line` plus the '\n' frame, retrying on EINTR and short writes;
/// false when the peer is gone (for sockets, make sure SIGPIPE is ignored
/// so a vanished reader surfaces here instead of killing the process).
inline bool write_line(int fd, std::string line) {
  line += '\n';
  std::size_t off = 0;
  while (off < line.size()) {
    const ssize_t n = ::write(fd, line.data() + off, line.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace pipeopt::util
