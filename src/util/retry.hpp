#pragma once

/// \file retry.hpp
/// Shared retry policy for wire clients: capped exponential backoff with
/// deterministic jitter, plus the one retryability classification of
/// typed error codes that `pipeopt client` and the router's failover scan
/// both follow (documented in docs/PROTOCOL.md and docs/RESILIENCE.md).
///
/// The classification in one line: transport failures and the router's
/// own `overloaded`/`unavailable` sheds are always safe to retry because
/// the request provably never started executing; `shard-lost` (and any
/// loss after response bytes arrived) means the request may have run, so
/// it is retried only when the request is idempotent — same test the
/// solve cache applies: no `deadline_ms`, no `time_budget_s`. Permanent
/// errors (parse failures, `expired`) never retry.

#include <cstdint>
#include <string>

namespace pipeopt::util {

/// How a typed wire error code answers "is re-sending this request safe
/// and potentially useful?".
enum class Retryability {
  No,            ///< permanent (parse error, expired deadline, unknown)
  Always,        ///< request never executed; re-send is free
  IfIdempotent,  ///< may have executed; re-send only deterministic requests
};

/// Maps a wire error `code` field to its retryability class. An empty
/// code (plain parse/validation errors carry none) is permanent.
[[nodiscard]] Retryability classify_error_code(const std::string& code);

/// Capped exponential backoff with deterministic jitter. `delay_ms(k)`
/// for attempt k (0-based count of failures so far) is drawn from
/// [base/2, base] where base = min(backoff_ms << k, max_backoff_ms); the
/// jitter is a pure function of (seed, attempt) so a fixed seed replays
/// the exact schedule — the same property the fault shim relies on.
struct RetryPolicy {
  std::size_t retries = 0;          ///< extra attempts after the first
  std::uint64_t backoff_ms = 50;    ///< base delay before attempt 1
  std::uint64_t max_backoff_ms = 2000;
  std::uint64_t seed = 0;           ///< jitter stream selector

  [[nodiscard]] std::uint64_t delay_ms(std::size_t attempt) const;
};

}  // namespace pipeopt::util
