#include "util/rational.hpp"

#include <cstdlib>
#include <numeric>
#include <ostream>

namespace pipeopt::util {
namespace {

// 128-bit integer for exact cross-product comparisons; __extension__
// silences -Wpedantic for the GCC/Clang builtin type.
__extension__ typedef __int128 int128;

/// Checked multiply: throws RationalOverflow if a*b does not fit in 64 bits.
std::int64_t checked_mul(std::int64_t a, std::int64_t b) {
  std::int64_t out = 0;
  if (__builtin_mul_overflow(a, b, &out)) throw RationalOverflow{};
  return out;
}

/// Checked add.
std::int64_t checked_add(std::int64_t a, std::int64_t b) {
  std::int64_t out = 0;
  if (__builtin_add_overflow(a, b, &out)) throw RationalOverflow{};
  return out;
}

}  // namespace

Rational::Rational(std::int64_t num, std::int64_t den) : num_(num), den_(den) {
  if (den_ == 0) throw std::invalid_argument("Rational: zero denominator");
  if (den_ < 0) {
    // INT64_MIN cannot be negated; reject rather than silently overflow.
    if (num_ == INT64_MIN || den_ == INT64_MIN) throw RationalOverflow{};
    num_ = -num_;
    den_ = -den_;
  }
  const std::int64_t g = std::gcd(num_, den_);
  if (g > 1) {
    num_ /= g;
    den_ /= g;
  }
}

double Rational::to_double() const noexcept {
  return static_cast<double>(num_) / static_cast<double>(den_);
}

std::string Rational::to_string() const {
  if (den_ == 1) return std::to_string(num_);
  return std::to_string(num_) + "/" + std::to_string(den_);
}

Rational Rational::operator-() const {
  if (num_ == INT64_MIN) throw RationalOverflow{};
  Rational r;
  r.num_ = -num_;
  r.den_ = den_;
  return r;
}

Rational& Rational::operator+=(const Rational& rhs) {
  // a/b + c/d = (a*(d/g) + c*(b/g)) / (b*(d/g)) with g = gcd(b, d): keeps
  // intermediates as small as possible before the final reduction.
  const std::int64_t g = std::gcd(den_, rhs.den_);
  const std::int64_t db = den_ / g;
  const std::int64_t dd = rhs.den_ / g;
  const std::int64_t num = checked_add(checked_mul(num_, dd), checked_mul(rhs.num_, db));
  const std::int64_t den = checked_mul(den_, dd);
  *this = Rational(num, den);
  return *this;
}

Rational& Rational::operator-=(const Rational& rhs) { return *this += -rhs; }

Rational& Rational::operator*=(const Rational& rhs) {
  // Cross-reduce before multiplying to dodge avoidable overflow.
  const std::int64_t g1 = std::gcd(num_, rhs.den_);
  const std::int64_t g2 = std::gcd(rhs.num_, den_);
  const std::int64_t num = checked_mul(num_ / g1, rhs.num_ / g2);
  const std::int64_t den = checked_mul(den_ / g2, rhs.den_ / g1);
  *this = Rational(num, den);
  return *this;
}

Rational& Rational::operator/=(const Rational& rhs) {
  if (rhs.num_ == 0) throw std::domain_error("Rational: division by zero");
  return *this *= Rational(rhs.den_, rhs.num_);
}

std::strong_ordering operator<=>(const Rational& a, const Rational& b) {
  // Compare a.num/a.den vs b.num/b.den via exact 128-bit cross products
  // (|num|, den < 2^63, so the products always fit in 128 bits).
  const int128 lhs = static_cast<int128>(a.num_) * b.den_;
  const int128 rhs = static_cast<int128>(b.num_) * a.den_;
  if (lhs < rhs) return std::strong_ordering::less;
  if (lhs > rhs) return std::strong_ordering::greater;
  return std::strong_ordering::equal;
}

Rational Rational::max(const Rational& a, const Rational& b) {
  return (a < b) ? b : a;
}

Rational Rational::min(const Rational& a, const Rational& b) {
  return (b < a) ? b : a;
}

Rational Rational::pow(unsigned exponent) const {
  Rational result{1};
  Rational base = *this;
  unsigned e = exponent;
  while (e > 0) {
    if (e & 1u) result *= base;
    base *= (e > 1) ? base : Rational{1};
    e >>= 1u;
  }
  return result;
}

std::ostream& operator<<(std::ostream& os, const Rational& r) {
  return os << r.to_string();
}

}  // namespace pipeopt::util
