#pragma once

/// \file timing.hpp
/// Monotonic stopwatch used by the benchmark harness and the complexity
/// tables (median-of-k wall-clock timings).

#include <chrono>

namespace pipeopt::util {

/// Steady-clock stopwatch; starts on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  [[nodiscard]] double elapsed_seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  [[nodiscard]] double elapsed_micros() const { return elapsed_seconds() * 1e6; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace pipeopt::util
