#pragma once

/// \file stats.hpp
/// Summary statistics and log-log scaling fits used by the benchmark harness
/// (runtime scaling exponents for the polynomial-vs-exponential evidence in
/// the Table 1 / Table 2 reproductions) and the observability layer
/// (src/obs): this header is the one home of the quantile math, shared by
/// `Summary::quantile` over raw samples and `weighted_quantile` over
/// bucketed histogram counts.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace pipeopt::util {

/// Accumulates samples and reports order statistics / moments.
///
/// Two modes:
///  * unbounded (default) — every sample is kept, as before;
///  * streaming ring-buffer (`Summary(window)`) — only the most recent
///    `window` samples are kept, so a polling loop (`pipeopt top`, the
///    client's `--poll-stats` sampler) can hold a rolling view at fixed
///    memory.
///
/// Order statistics sort lazily: the first `quantile()`/`median()`/`min()`
/// after an `add()` sorts once into a cached buffer, and every further
/// query reuses it — a polling loop that queries several quantiles per
/// tick no longer copies+sorts per call.
class Summary {
 public:
  /// Unbounded mode: keeps every sample.
  Summary() = default;

  /// Streaming mode: ring buffer over the most recent `window` samples
  /// (window 0 behaves like the unbounded mode).
  explicit Summary(std::size_t window) : window_(window) {}

  void add(double x);

  /// Samples currently held (≤ window in streaming mode).
  [[nodiscard]] std::size_t count() const noexcept { return samples_.size(); }
  /// Lifetime samples ever added (== count() in unbounded mode).
  [[nodiscard]] std::uint64_t total_added() const noexcept { return added_; }
  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }

  [[nodiscard]] double mean() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double median() const;
  /// q in [0,1]; linear interpolation between order statistics.
  [[nodiscard]] double quantile(double q) const;
  /// Geometric mean; all samples must be positive.
  [[nodiscard]] double geomean() const;

  /// The shared interpolation core: the q-quantile of an already-sorted
  /// sample set (linear interpolation between adjacent order statistics).
  /// `sorted` must be non-empty and ascending. Exposed so other quantile
  /// paths (the histogram math below) share one rank convention.
  [[nodiscard]] static double sorted_quantile(std::span<const double> sorted,
                                              double q);

 private:
  /// Sorts into sorted_ when dirty (called by the order-statistic getters).
  void ensure_sorted() const;

  std::size_t window_ = 0;       ///< 0 = unbounded
  std::size_t next_slot_ = 0;    ///< ring write cursor (streaming mode)
  std::uint64_t added_ = 0;      ///< lifetime add() count
  std::vector<double> samples_;  ///< insertion ring / append log
  mutable std::vector<double> sorted_;  ///< lazy sorted cache
  mutable bool sorted_valid_ = false;
};

/// The q-quantile of bucketed data: `counts[i]` samples fell into the
/// half-open value range (`uppers[i-1]`, `uppers[i]`] (the range of
/// bucket 0 starts at `lower0`). Linear interpolation inside the selected
/// bucket, the same rank convention as `Summary::sorted_quantile` — this
/// is the quantile path `obs::MetricsRegistry` histograms (and their
/// fleet-merged bucket counts) resolve through. Returns `lower0` when
/// every count is zero. \pre uppers.size() == counts.size(), uppers
/// ascending, q in [0,1].
[[nodiscard]] double weighted_quantile(std::span<const std::uint64_t> counts,
                                       std::span<const double> uppers,
                                       double lower0, double q);

/// Least-squares fit of y = a * x^b, i.e. log y = log a + b log x.
/// Returns {a, b, r2}. Requires all x, y > 0 and at least two points.
struct PowerFit {
  double coefficient = 0.0;  ///< a
  double exponent = 0.0;     ///< b
  double r_squared = 0.0;    ///< goodness of fit in log space
};

[[nodiscard]] PowerFit fit_power_law(const std::vector<double>& x,
                                     const std::vector<double>& y);

}  // namespace pipeopt::util
