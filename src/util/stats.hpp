#pragma once

/// \file stats.hpp
/// Summary statistics and log-log scaling fits used by the benchmark harness
/// (runtime scaling exponents for the polynomial-vs-exponential evidence in
/// the Table 1 / Table 2 reproductions).

#include <cstddef>
#include <vector>

namespace pipeopt::util {

/// Accumulates samples and reports order statistics / moments.
class Summary {
 public:
  void add(double x) { samples_.push_back(x); }

  [[nodiscard]] std::size_t count() const noexcept { return samples_.size(); }
  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }

  [[nodiscard]] double mean() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double median() const;
  /// q in [0,1]; linear interpolation between order statistics.
  [[nodiscard]] double quantile(double q) const;
  /// Geometric mean; all samples must be positive.
  [[nodiscard]] double geomean() const;

 private:
  // Kept unsorted; quantile copies and sorts on demand (bench-scale data).
  std::vector<double> samples_;
};

/// Least-squares fit of y = a * x^b, i.e. log y = log a + b log x.
/// Returns {a, b, r2}. Requires all x, y > 0 and at least two points.
struct PowerFit {
  double coefficient = 0.0;  ///< a
  double exponent = 0.0;     ///< b
  double r_squared = 0.0;    ///< goodness of fit in log space
};

[[nodiscard]] PowerFit fit_power_law(const std::vector<double>& x,
                                     const std::vector<double>& y);

}  // namespace pipeopt::util
