#include "util/retry.hpp"

namespace pipeopt::util {
namespace {

/// splitmix64 — the same tiny deterministic mixer the fault shim uses;
/// good enough to decorrelate jitter across attempts without pulling in
/// <random> state that would make replays depend on call order.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

Retryability classify_error_code(const std::string& code) {
  if (code == "overloaded" || code == "unavailable") {
    return Retryability::Always;  // typed shed: never reached an executor
  }
  if (code == "shard-lost") {
    return Retryability::IfIdempotent;  // shard died mid-flight; may have run
  }
  // "", "expired", parse errors, unknown future codes: permanent.
  return Retryability::No;
}

std::uint64_t RetryPolicy::delay_ms(std::size_t attempt) const {
  if (backoff_ms == 0) return 0;
  std::uint64_t base = backoff_ms;
  for (std::size_t k = 0; k < attempt && base < max_backoff_ms; ++k) {
    base *= 2;
  }
  if (base > max_backoff_ms) base = max_backoff_ms;
  // Deterministic jitter in [base/2, base]: full jitter would allow 0ms
  // (no spacing at all); half jitter keeps spacing while decorrelating
  // retry storms from many clients with distinct seeds.
  const std::uint64_t half = base / 2;
  const std::uint64_t span = base - half + 1;
  return half + mix64(seed ^ (0xA5A5ULL + attempt)) % span;
}

}  // namespace pipeopt::util
