#pragma once

/// \file random.hpp
/// Seeded random-number utilities.
///
/// Everything stochastic in the library (instance generators, randomized
/// heuristics, property-test sweeps) draws from an explicitly-seeded Rng so
/// that every experiment is reproducible from its reported seed.

#include <cstdint>
#include <random>
#include <span>
#include <vector>

namespace pipeopt::util {

/// Thin wrapper around mt19937_64 with the sampling helpers the library needs.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed), seed_(seed) {}

  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

  /// Uniform double in [lo, hi].
  [[nodiscard]] double uniform(double lo, double hi) {
    std::uniform_real_distribution<double> dist(lo, hi);
    return dist(engine_);
  }

  /// Log-uniform double in [lo, hi]; both bounds must be positive.
  /// Used for compute/communication weights so instances span scales.
  [[nodiscard]] double log_uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    std::uniform_int_distribution<std::int64_t> dist(lo, hi);
    return dist(engine_);
  }

  /// Uniform index in [0, n).
  [[nodiscard]] std::size_t index(std::size_t n) {
    std::uniform_int_distribution<std::size_t> dist(0, n - 1);
    return dist(engine_);
  }

  /// Bernoulli draw.
  [[nodiscard]] bool chance(double p) {
    std::bernoulli_distribution dist(p);
    return dist(engine_);
  }

  /// Random permutation of [0, n).
  [[nodiscard]] std::vector<std::size_t> permutation(std::size_t n);

  /// Picks one element of a non-empty span uniformly.
  template <typename T>
  [[nodiscard]] const T& pick(std::span<const T> items) {
    return items[index(items.size())];
  }

  /// Derives an independent child generator (for per-instance streams).
  [[nodiscard]] Rng fork() { return Rng(engine_()); }

  [[nodiscard]] std::mt19937_64& engine() noexcept { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uint64_t seed_;
};

}  // namespace pipeopt::util
