#pragma once

/// \file numeric.hpp
/// Floating-point comparison policy shared by the whole library.
///
/// All optimization code works in double precision. Feasibility tests of the
/// form "cycle-time <= threshold" use approx_le so that thresholds taken from
/// candidate sets (values produced by the exact same arithmetic expressions
/// as the quantities being tested) never fail by one ulp.

#include <charconv>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <optional>
#include <string>
#include <string_view>
#include <type_traits>

namespace pipeopt::util {

/// Default relative tolerance for feasibility comparisons.
inline constexpr double kRelTol = 1e-9;
/// Default absolute tolerance floor (guards comparisons around zero).
inline constexpr double kAbsTol = 1e-12;

/// Value used to represent "infeasible / unbounded" objective values.
inline constexpr double kInfinity = std::numeric_limits<double>::infinity();

/// Returns true if a <= b up to combined relative/absolute tolerance.
[[nodiscard]] inline bool approx_le(double a, double b,
                                    double rel = kRelTol,
                                    double abs = kAbsTol) noexcept {
  if (a <= b) return true;
  if (std::isinf(a) || std::isinf(b)) return false;  // a > b and one is infinite
  const double scale = std::max(std::fabs(a), std::fabs(b));
  return a - b <= std::max(abs, rel * scale);
}

/// Returns true if a >= b up to tolerance.
[[nodiscard]] inline bool approx_ge(double a, double b,
                                    double rel = kRelTol,
                                    double abs = kAbsTol) noexcept {
  return approx_le(b, a, rel, abs);
}

/// Returns true if a and b are equal up to tolerance.
[[nodiscard]] inline bool approx_eq(double a, double b,
                                    double rel = kRelTol,
                                    double abs = kAbsTol) noexcept {
  if (a == b) return true;
  if (std::isinf(a) || std::isinf(b)) return false;  // unequal infinities
  const double scale = std::max(std::fabs(a), std::fabs(b));
  return std::fabs(a - b) <= std::max(abs, rel * scale);
}

/// Strictly-less with tolerance: a < b and not approx_eq.
[[nodiscard]] inline bool approx_lt(double a, double b,
                                    double rel = kRelTol,
                                    double abs = kAbsTol) noexcept {
  return a < b && !approx_eq(a, b, rel, abs);
}

/// Returns true when x stands for a feasible (finite) objective value.
[[nodiscard]] inline bool is_feasible_value(double x) noexcept {
  return std::isfinite(x);
}

/// Strict number parsing shared by the CLI and the bench diagnostics: the
/// whole token must be consumed (no trailing junk, no silent
/// negative-to-unsigned wrap); empty or malformed input yields nullopt.
/// Floating-point types go through strtod because libc++ shipped only the
/// integral std::from_chars overloads for a long time.
template <typename T>
[[nodiscard]] std::optional<T> parse_number(std::string_view text) {
  if (text.empty()) return std::nullopt;
  if constexpr (std::is_floating_point_v<T>) {
    const std::string token(text);  // strtod needs NUL termination
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return std::nullopt;
    return static_cast<T>(value);
  } else {
    T value{};
    const char* begin = text.data();
    const char* end = begin + text.size();
    const auto [ptr, ec] = std::from_chars(begin, end, value);
    if (ec != std::errc{} || ptr != end) return std::nullopt;
    return value;
  }
}

}  // namespace pipeopt::util
