#pragma once

/// \file table.hpp
/// Minimal ASCII table renderer for the benchmark harness: the Table 1 /
/// Table 2 reproductions print paper-style matrices to stdout.

#include <string>
#include <vector>

namespace pipeopt::util {

/// Column-aligned ASCII table with a header row.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; must match the header arity.
  void add_row(std::vector<std::string> row);

  /// Renders with single-space-padded `|` separators and a rule under the
  /// header. `indent` prefixes every line.
  [[nodiscard]] std::string render(const std::string& indent = "") const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision, trimming trailing zeros
/// ("1.25", "14", "2.7500" -> "2.75").
[[nodiscard]] std::string format_double(double value, int max_precision = 6);

}  // namespace pipeopt::util
