#include "util/random.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

namespace pipeopt::util {

double Rng::log_uniform(double lo, double hi) {
  if (lo <= 0.0 || hi < lo) {
    throw std::invalid_argument("Rng::log_uniform requires 0 < lo <= hi");
  }
  const double u = uniform(std::log(lo), std::log(hi));
  return std::exp(u);
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> perm(n);
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  // Fisher-Yates.
  for (std::size_t i = n; i > 1; --i) {
    std::swap(perm[i - 1], perm[index(i)]);
  }
  return perm;
}

}  // namespace pipeopt::util
