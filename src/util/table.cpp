#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace pipeopt::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("Table: empty header");
}

void Table::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("Table: row arity mismatch");
  }
  rows_.push_back(std::move(row));
}

std::string Table::render(const std::string& indent) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    os << indent << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << row[c] << std::string(width[c] - row[c].size(), ' ') << " |";
    }
    os << '\n';
  };
  emit_row(header_);
  os << indent << "|";
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << std::string(width[c] + 2, '-') << "|";
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string format_double(double value, int max_precision) {
  if (std::isinf(value)) return value > 0 ? "inf" : "-inf";
  if (std::isnan(value)) return "nan";
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(max_precision);
  os << value;
  std::string s = os.str();
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  return s;
}

}  // namespace pipeopt::util
