#pragma once

/// \file rational.hpp
/// Exact rational arithmetic on 64-bit numerator/denominator with overflow
/// checking.
///
/// The optimization path of the library runs in double precision; Rational is
/// the verification substrate. Tests re-evaluate period/latency/energy
/// expressions exactly and compare against the double pipeline, and the
/// reduction gadgets use Rational to certify YES/NO instances without
/// tolerance arguments.

#include <compare>
#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>

namespace pipeopt::util {

/// Thrown when a Rational operation would overflow the 64-bit representation.
class RationalOverflow : public std::runtime_error {
 public:
  RationalOverflow() : std::runtime_error("pipeopt::util::Rational overflow") {}
};

/// Exact rational number num/den, always stored in canonical form:
/// den > 0 and gcd(|num|, den) == 1.
class Rational {
 public:
  constexpr Rational() noexcept : num_(0), den_(1) {}
  /// Implicit from integer: keeps call sites like `r + 1` natural.
  constexpr Rational(std::int64_t value) noexcept : num_(value), den_(1) {}
  /// From numerator/denominator; normalizes sign and reduces.
  /// \throws std::invalid_argument if den == 0.
  Rational(std::int64_t num, std::int64_t den);

  [[nodiscard]] constexpr std::int64_t num() const noexcept { return num_; }
  [[nodiscard]] constexpr std::int64_t den() const noexcept { return den_; }

  [[nodiscard]] double to_double() const noexcept;
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] bool is_zero() const noexcept { return num_ == 0; }
  [[nodiscard]] bool is_negative() const noexcept { return num_ < 0; }

  Rational operator-() const;
  Rational& operator+=(const Rational& rhs);
  Rational& operator-=(const Rational& rhs);
  Rational& operator*=(const Rational& rhs);
  /// \throws std::domain_error on division by zero.
  Rational& operator/=(const Rational& rhs);

  friend Rational operator+(Rational lhs, const Rational& rhs) { return lhs += rhs; }
  friend Rational operator-(Rational lhs, const Rational& rhs) { return lhs -= rhs; }
  friend Rational operator*(Rational lhs, const Rational& rhs) { return lhs *= rhs; }
  friend Rational operator/(Rational lhs, const Rational& rhs) { return lhs /= rhs; }

  friend bool operator==(const Rational& a, const Rational& b) noexcept {
    return a.num_ == b.num_ && a.den_ == b.den_;
  }
  friend std::strong_ordering operator<=>(const Rational& a, const Rational& b);

  /// max/min helpers (handy when mirroring Eq. 3's max-of-three shape).
  [[nodiscard]] static Rational max(const Rational& a, const Rational& b);
  [[nodiscard]] static Rational min(const Rational& a, const Rational& b);

  /// Integer power with non-negative exponent (used for energy s^alpha when
  /// alpha is integral). \throws RationalOverflow on overflow.
  [[nodiscard]] Rational pow(unsigned exponent) const;

 private:
  std::int64_t num_;
  std::int64_t den_;
};

std::ostream& operator<<(std::ostream& os, const Rational& r);

}  // namespace pipeopt::util
