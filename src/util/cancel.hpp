#pragma once

/// \file cancel.hpp
/// Cooperative cancellation for long-running solves.
///
/// A `CancelSource` owns one cancellation flag; `CancelToken`s are cheap
/// copyable views of it that long-running loops poll between units of work
/// (exact-search nodes, heuristic iterations). Cancellation is cooperative:
/// requesting it never interrupts a computation, it only makes the next
/// poll observe the flag — so a cancelled solve unwinds through its normal
/// bounded-search exit and returns a typed result, never leaks.
///
/// A token may additionally carry a wall-clock deadline
/// (`with_deadline`): once the deadline passes, `cancelled()` reports true
/// with no source involved, so per-request timeouts need no timer thread —
/// the same polls that observe a fired source observe the expired clock.
///
/// Both types are thread-safe: any thread may request cancellation while
/// worker threads poll, which is exactly how the api::Executor threads a
/// caller-held token through its pool.

#include <atomic>
#include <chrono>
#include <memory>

namespace pipeopt::util {

/// View of a cancellation flag. Default-constructed tokens belong to no
/// source and never report cancellation, so APIs can take one by value with
/// "not cancellable" as the natural default.
class CancelToken {
 public:
  CancelToken() = default;

  /// True when the owning source requested cancellation or the token's
  /// deadline (if any) has passed. A relaxed atomic load plus at most one
  /// steady-clock read — cheap enough to poll every few search nodes.
  [[nodiscard]] bool cancelled() const noexcept {
    if (flag_ && flag_->load(std::memory_order_relaxed)) return true;
    return has_deadline_ && std::chrono::steady_clock::now() >= deadline_;
  }

  /// True when this token is connected to a source or carries a deadline.
  [[nodiscard]] bool cancellable() const noexcept {
    return flag_ != nullptr || has_deadline_;
  }

  /// True when this token carries a wall-clock deadline. Deadline-bearing
  /// tokens make otherwise-deterministic solves time-dependent (iterative
  /// heuristics stop early without reporting cancellation), which is why
  /// the solve cache refuses to serve or store them.
  [[nodiscard]] bool has_deadline() const noexcept { return has_deadline_; }

  /// \brief Copy of this token that additionally cancels once `deadline`
  /// passes.
  ///
  /// The source link (if any) is preserved: whichever fires first wins. A
  /// second call replaces the deadline rather than stacking — which is how
  /// every execution of a reused `SolvePlan` gets its own full window.
  [[nodiscard]] CancelToken with_deadline(
      std::chrono::steady_clock::time_point deadline) const noexcept {
    CancelToken token = *this;
    token.deadline_ = deadline;
    token.has_deadline_ = true;
    return token;
  }

  /// \brief `with_deadline(now + timeout)`.
  [[nodiscard]] CancelToken with_timeout(
      std::chrono::steady_clock::duration timeout) const noexcept {
    return with_deadline(std::chrono::steady_clock::now() + timeout);
  }

 private:
  friend class CancelSource;
  explicit CancelToken(std::shared_ptr<const std::atomic<bool>> flag) noexcept
      : flag_(std::move(flag)) {}

  std::shared_ptr<const std::atomic<bool>> flag_;
  std::chrono::steady_clock::time_point deadline_{};
  bool has_deadline_ = false;
};

/// Owner of a cancellation flag. Tokens remain valid (and permanently
/// cancelled, if requested) even after the source is destroyed.
class CancelSource {
 public:
  CancelSource() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void request_cancel() noexcept {
    flag_->store(true, std::memory_order_relaxed);
  }

  [[nodiscard]] bool cancel_requested() const noexcept {
    return flag_->load(std::memory_order_relaxed);
  }

  [[nodiscard]] CancelToken token() const noexcept {
    return CancelToken(flag_);
  }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

}  // namespace pipeopt::util
