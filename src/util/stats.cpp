#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace pipeopt::util {

void Summary::add(double x) {
  ++added_;
  sorted_valid_ = false;
  if (window_ == 0 || samples_.size() < window_) {
    samples_.push_back(x);
    return;
  }
  // Ring overwrite: the slot cursor walks the buffer so the window always
  // holds the most recent `window_` samples.
  samples_[next_slot_] = x;
  next_slot_ = (next_slot_ + 1) % window_;
}

void Summary::ensure_sorted() const {
  if (sorted_valid_) return;
  sorted_ = samples_;
  std::sort(sorted_.begin(), sorted_.end());
  sorted_valid_ = true;
}

double Summary::mean() const {
  if (samples_.empty()) throw std::logic_error("Summary::mean on empty set");
  return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
         static_cast<double>(samples_.size());
}

double Summary::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double x : samples_) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double Summary::min() const {
  if (samples_.empty()) throw std::logic_error("Summary::min on empty set");
  ensure_sorted();
  return sorted_.front();
}

double Summary::max() const {
  if (samples_.empty()) throw std::logic_error("Summary::max on empty set");
  ensure_sorted();
  return sorted_.back();
}

double Summary::median() const { return quantile(0.5); }

double Summary::sorted_quantile(std::span<const double> sorted, double q) {
  if (sorted.empty()) {
    throw std::logic_error("sorted_quantile on empty set");
  }
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile q outside [0,1]");
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double Summary::quantile(double q) const {
  if (samples_.empty()) throw std::logic_error("Summary::quantile on empty set");
  ensure_sorted();
  return sorted_quantile(sorted_, q);
}

double Summary::geomean() const {
  if (samples_.empty()) throw std::logic_error("Summary::geomean on empty set");
  double acc = 0.0;
  for (double x : samples_) {
    if (x <= 0.0) throw std::domain_error("Summary::geomean requires positive samples");
    acc += std::log(x);
  }
  return std::exp(acc / static_cast<double>(samples_.size()));
}

double weighted_quantile(std::span<const std::uint64_t> counts,
                         std::span<const double> uppers, double lower0,
                         double q) {
  if (counts.size() != uppers.size()) {
    throw std::invalid_argument("weighted_quantile: counts/uppers size mismatch");
  }
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile q outside [0,1]");
  std::uint64_t total = 0;
  for (const std::uint64_t c : counts) total += c;
  if (total == 0) return lower0;
  // Same rank convention as sorted_quantile: the target rank is
  // q * (n - 1), counted in sample order; the bucket holding that rank is
  // interpolated linearly across its width by the rank's position inside
  // the bucket's run of samples.
  const double pos = q * static_cast<double>(total - 1);
  std::uint64_t before = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const auto first = static_cast<double>(before);
    before += counts[i];
    if (pos < static_cast<double>(before)) {
      const double lower = (i == 0) ? lower0 : uppers[i - 1];
      const double span = uppers[i] - lower;
      const double frac =
          (pos - first + 0.5) / static_cast<double>(counts[i]);
      return lower + span * std::clamp(frac, 0.0, 1.0);
    }
  }
  return uppers.back();
}

PowerFit fit_power_law(const std::vector<double>& x, const std::vector<double>& y) {
  if (x.size() != y.size() || x.size() < 2) {
    throw std::invalid_argument("fit_power_law: need >=2 paired samples");
  }
  const auto n = static_cast<double>(x.size());
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x[i] <= 0.0 || y[i] <= 0.0) {
      throw std::domain_error("fit_power_law requires positive samples");
    }
    const double lx = std::log(x[i]);
    const double ly = std::log(y[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
    syy += ly * ly;
  }
  const double denom = n * sxx - sx * sx;
  if (denom == 0.0) throw std::domain_error("fit_power_law: degenerate x values");
  PowerFit fit;
  fit.exponent = (n * sxy - sx * sy) / denom;
  fit.coefficient = std::exp((sy - fit.exponent * sx) / n);
  const double ss_tot = syy - sy * sy / n;
  double ss_res = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double pred = std::log(fit.coefficient) + fit.exponent * std::log(x[i]);
    const double resid = std::log(y[i]) - pred;
    ss_res += resid * resid;
  }
  fit.r_squared = (ss_tot > 0.0) ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

}  // namespace pipeopt::util
