#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace pipeopt::util {

double Summary::mean() const {
  if (samples_.empty()) throw std::logic_error("Summary::mean on empty set");
  return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
         static_cast<double>(samples_.size());
}

double Summary::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double x : samples_) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double Summary::min() const {
  if (samples_.empty()) throw std::logic_error("Summary::min on empty set");
  return *std::min_element(samples_.begin(), samples_.end());
}

double Summary::max() const {
  if (samples_.empty()) throw std::logic_error("Summary::max on empty set");
  return *std::max_element(samples_.begin(), samples_.end());
}

double Summary::median() const { return quantile(0.5); }

double Summary::quantile(double q) const {
  if (samples_.empty()) throw std::logic_error("Summary::quantile on empty set");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile q outside [0,1]");
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double Summary::geomean() const {
  if (samples_.empty()) throw std::logic_error("Summary::geomean on empty set");
  double acc = 0.0;
  for (double x : samples_) {
    if (x <= 0.0) throw std::domain_error("Summary::geomean requires positive samples");
    acc += std::log(x);
  }
  return std::exp(acc / static_cast<double>(samples_.size()));
}

PowerFit fit_power_law(const std::vector<double>& x, const std::vector<double>& y) {
  if (x.size() != y.size() || x.size() < 2) {
    throw std::invalid_argument("fit_power_law: need >=2 paired samples");
  }
  const auto n = static_cast<double>(x.size());
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x[i] <= 0.0 || y[i] <= 0.0) {
      throw std::domain_error("fit_power_law requires positive samples");
    }
    const double lx = std::log(x[i]);
    const double ly = std::log(y[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
    syy += ly * ly;
  }
  const double denom = n * sxx - sx * sx;
  if (denom == 0.0) throw std::domain_error("fit_power_law: degenerate x values");
  PowerFit fit;
  fit.exponent = (n * sxy - sx * sy) / denom;
  fit.coefficient = std::exp((sy - fit.exponent * sx) / n);
  const double ss_tot = syy - sy * sy / n;
  double ss_res = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double pred = std::log(fit.coefficient) + fit.exponent * std::log(x[i]);
    const double resid = std::log(y[i]) - pred;
    ss_res += resid * resid;
  }
  fit.r_squared = (ss_tot > 0.0) ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

}  // namespace pipeopt::util
