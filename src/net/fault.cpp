#include "net/fault.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <thread>

namespace pipeopt::net {
namespace {

/// splitmix64: decision draws must be a pure function of
/// (seed, site, kind, counter), never of shared RNG state, so concurrent
/// sessions cannot perturb each other's fault sequences.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Top 53 bits as a double in [0,1).
double to_unit(std::uint64_t draw) {
  return static_cast<double>(draw >> 11) * 0x1.0p-53;
}

const char* kKindNames[kFaultKindCount] = {"refuse", "close", "truncate",
                                           "partial", "delay"};

}  // namespace

const char* fault_kind_name(FaultKind kind) {
  return kKindNames[static_cast<std::size_t>(kind)];
}

std::optional<FaultSpec> parse_fault_spec(const std::string& text) {
  const auto first = text.find(':');
  if (first == std::string::npos) return std::nullopt;
  const auto second = text.find(':', first + 1);
  if (second == std::string::npos) return std::nullopt;
  const std::string seed_text = text.substr(0, first);
  const std::string prob_text = text.substr(first + 1, second - first - 1);
  const std::string kinds_text = text.substr(second + 1);
  if (seed_text.empty() || prob_text.empty() || kinds_text.empty()) {
    return std::nullopt;
  }

  FaultSpec spec;
  {
    errno = 0;
    char* end = nullptr;
    spec.seed = std::strtoull(seed_text.c_str(), &end, 10);
    if (errno != 0 || end == nullptr || *end != '\0') return std::nullopt;
  }
  {
    errno = 0;
    char* end = nullptr;
    spec.probability = std::strtod(prob_text.c_str(), &end);
    if (errno != 0 || end == nullptr || *end != '\0') return std::nullopt;
    if (!(spec.probability >= 0.0 && spec.probability <= 1.0)) {
      return std::nullopt;
    }
  }
  std::size_t start = 0;
  while (start <= kinds_text.size()) {
    auto comma = kinds_text.find(',', start);
    if (comma == std::string::npos) comma = kinds_text.size();
    const std::string kind = kinds_text.substr(start, comma - start);
    start = comma + 1;
    if (kind == "all") {
      spec.kinds.fill(true);
      continue;
    }
    bool known = false;
    for (std::size_t k = 0; k < kFaultKindCount; ++k) {
      if (kind == kKindNames[k]) {
        spec.kinds[k] = true;
        known = true;
        break;
      }
    }
    if (!known) return std::nullopt;
  }
  return spec;
}

FaultInjector::FaultInjector(FaultSpec spec) : spec_(spec) {
  front_io_.read = [this](int fd, void* buf, std::size_t len) {
    return hooked_read(Site::FrontRead, fd, buf, len);
  };
  front_io_.write = [this](int fd, const void* buf, std::size_t len) {
    return hooked_write(Site::FrontWrite, fd, buf, len);
  };
  relay_io_.read = [this](int fd, void* buf, std::size_t len) {
    return hooked_read(Site::RelayRead, fd, buf, len);
  };
  relay_io_.write = [this](int fd, const void* buf, std::size_t len) {
    return hooked_write(Site::RelayWrite, fd, buf, len);
  };
}

bool FaultInjector::decide(Site site, FaultKind kind, std::uint64_t& param) {
  if (!spec_.enabled(kind) || spec_.probability <= 0.0) return false;
  auto& counter =
      counters_[static_cast<std::size_t>(site)][static_cast<std::size_t>(kind)];
  const std::uint64_t n = counter.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t draw =
      mix64(spec_.seed ^ mix64((static_cast<std::uint64_t>(site) << 8) |
                               static_cast<std::uint64_t>(kind)) ^
            n);
  if (to_unit(draw) >= spec_.probability) return false;
  param = mix64(draw);
  injected_[static_cast<std::size_t>(kind)].fetch_add(
      1, std::memory_order_relaxed);
  return true;
}

bool FaultInjector::accept_should_close() {
  std::uint64_t param = 0;
  return decide(Site::Accept, FaultKind::Close, param);
}

bool FaultInjector::connect_should_refuse() {
  std::uint64_t param = 0;
  return decide(Site::Connect, FaultKind::Refuse, param);
}

std::uint64_t FaultInjector::injected(FaultKind kind) const {
  return injected_[static_cast<std::size_t>(kind)].load(
      std::memory_order_relaxed);
}

std::uint64_t FaultInjector::injected_total() const {
  std::uint64_t total = 0;
  for (const auto& count : injected_) {
    total += count.load(std::memory_order_relaxed);
  }
  return total;
}

ssize_t FaultInjector::hooked_read(Site site, int fd, void* buf,
                                   std::size_t len) {
  std::uint64_t param = 0;
  if (decide(site, FaultKind::Delay, param)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1 + param % 25));
  }
  return ::read(fd, buf, len);
}

ssize_t FaultInjector::hooked_write(Site site, int fd, const void* buf,
                                    std::size_t len) {
  std::uint64_t param = 0;
  if (decide(site, FaultKind::Delay, param)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1 + param % 25));
  }
  if (len >= 2 && decide(site, FaultKind::Truncate, param)) {
    // Deliver a strict prefix that always drops the trailing '\n' AND at
    // least one payload byte: a torn frame must never be parseable as a
    // complete message, or a peer could execute a request the sender
    // believes failed (double execution on retry).
    const std::size_t keep = param % (len - 1);
    std::size_t off = 0;
    while (off < keep) {
      const ssize_t n = ::write(fd, static_cast<const char*>(buf) + off,
                                keep - off);
      if (n < 0) {
        if (errno == EINTR) continue;
        break;
      }
      off += static_cast<std::size_t>(n);
    }
    ::shutdown(fd, SHUT_RDWR);
    errno = ECONNRESET;
    return -1;
  }
  if (len >= 2 && decide(site, FaultKind::Partial, param)) {
    return ::write(fd, buf, 1 + param % (len - 1));
  }
  return ::write(fd, buf, len);
}

}  // namespace pipeopt::net
