#pragma once

/// \file fault.hpp
/// Deterministic, seeded fault injection for the fleet's socket paths.
///
/// A `FaultSpec` is parsed from the `--fault-spec seed:prob:kinds` flag
/// (e.g. `7:0.25:close,truncate,delay`). A `FaultInjector` built from it
/// makes an independent deterministic decision stream per (site, kind):
/// the n-th draw at a site is a pure function of (seed, site, kind, n),
/// so a fixed seed replays the exact same fault campaign regardless of
/// wall-clock timing — the property the chaos harness asserts on.
///
/// Kinds and where they bite:
///   refuse    connect_should_refuse(): outbound connects fail as if the
///             listener were down (router -> shard relay connects)
///   close     accept_should_close(): the listener accepts then
///             immediately closes, before reading a byte
///   truncate  write hook: deliver a strict prefix of the frame (always
///             dropping at least the trailing '\n' and one payload byte,
///             so a torn request can never parse as a complete message),
///             then shut the socket down — the peer sees a torn line + EOF
///   partial   write hook: short write; the framing layer's retry loop
///             completes the frame, proving short writes are harmless
///   delay     read/write hooks: injected 1-25ms sleeps
///
/// The injector is per-instance (each Server/Router owns its own), so
/// in-process tests can inject faults at the shards while the test
/// client's own sockets stay clean.

#include <array>
#include <atomic>
#include <cstdint>
#include <optional>
#include <string>

#include "util/fdio.hpp"

namespace pipeopt::net {

enum class FaultKind : std::size_t {
  Refuse = 0,
  Close,
  Truncate,
  Partial,
  Delay,
};
inline constexpr std::size_t kFaultKindCount = 5;

[[nodiscard]] const char* fault_kind_name(FaultKind kind);

/// Parsed form of `--fault-spec seed:prob:kind[,kind...]`.
struct FaultSpec {
  std::uint64_t seed = 0;
  double probability = 0.0;  ///< per-decision injection probability [0,1]
  std::array<bool, kFaultKindCount> kinds{};

  [[nodiscard]] bool enabled(FaultKind kind) const {
    return kinds[static_cast<std::size_t>(kind)];
  }
  [[nodiscard]] bool any() const {
    for (const bool k : kinds) {
      if (k) return true;
    }
    return false;
  }
};

/// Parses the spec grammar; nullopt on malformed input (bad seed, a
/// probability outside [0,1], an unknown kind, or an empty kind list).
/// `all` expands to every kind.
[[nodiscard]] std::optional<FaultSpec> parse_fault_spec(
    const std::string& text);

class FaultInjector {
 public:
  /// Decision sites. Front* wrap the listener-facing session sockets,
  /// Relay* wrap the router's outbound shard connections. Separate
  /// streams per site keep campaigns deterministic even when traffic on
  /// one site (e.g. health probes) would otherwise perturb another.
  enum class Site : std::size_t {
    Accept = 0,
    Connect,
    FrontRead,
    FrontWrite,
    RelayRead,
    RelayWrite,
  };
  static constexpr std::size_t kSiteCount = 6;

  explicit FaultInjector(FaultSpec spec);

  /// True when the freshly accepted connection should be dropped on the
  /// floor (kind `close`).
  [[nodiscard]] bool accept_should_close();

  /// True when an outbound connect should fail without dialing (kind
  /// `refuse`).
  [[nodiscard]] bool connect_should_refuse();

  /// Hook pairs for util::FdLineReader / util::write_line. Valid for the
  /// injector's lifetime; thread-safe.
  [[nodiscard]] const util::IoHooks& front_io() const { return front_io_; }
  [[nodiscard]] const util::IoHooks& relay_io() const { return relay_io_; }

  [[nodiscard]] const FaultSpec& spec() const { return spec_; }

  /// Total faults injected for `kind` across all sites (observability /
  /// test assertions; not part of the decision stream).
  [[nodiscard]] std::uint64_t injected(FaultKind kind) const;
  [[nodiscard]] std::uint64_t injected_total() const;

 private:
  /// Draws the next decision for (site, kind); `param` receives a
  /// deterministic 64-bit value for sizing the fault (truncation point,
  /// partial length, delay duration).
  bool decide(Site site, FaultKind kind, std::uint64_t& param);

  ssize_t hooked_read(Site site, int fd, void* buf, std::size_t len);
  ssize_t hooked_write(Site site, int fd, const void* buf, std::size_t len);

  FaultSpec spec_;
  std::array<std::array<std::atomic<std::uint64_t>, kFaultKindCount>,
             kSiteCount>
      counters_{};
  std::array<std::atomic<std::uint64_t>, kFaultKindCount> injected_{};
  util::IoHooks front_io_;
  util::IoHooks relay_io_;
};

}  // namespace pipeopt::net
