#include "exact/branch_and_bound.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/eval_batch.hpp"
#include "core/evaluation.hpp"
#include "util/numeric.hpp"

namespace pipeopt::exact {
namespace {

using core::IntervalAssignment;
using core::Mapping;
using core::Problem;

/// Scalar lookup policy: the bounds-checked object-graph accessors the
/// search used before the SoA tables. Kept for the nodes/sec before/after
/// comparison (and the bit-identity cross-check) in bench_eval_hot_path —
/// both policies return identical doubles for every query, so the two
/// searches are bit-for-bit the same and only nodes/sec differs.
struct ScalarTables {
  const Problem& p;

  [[nodiscard]] double weight(std::size_t a) const {
    return p.application(a).weight();
  }
  [[nodiscard]] std::size_t stage_count(std::size_t a) const {
    return p.application(a).stage_count();
  }
  [[nodiscard]] double compute_sum(std::size_t a, std::size_t first,
                                   std::size_t last) const {
    return p.application(a).total_compute(first, last);
  }
  [[nodiscard]] double boundary(std::size_t a, std::size_t i) const {
    return p.application(a).boundary_size(i);
  }
  [[nodiscard]] double link_bandwidth(std::size_t u, std::size_t v) const {
    return p.platform().bandwidth(u, v);
  }
  [[nodiscard]] double input_bandwidth(std::size_t a, std::size_t u) const {
    return p.platform().in_bandwidth(a, u);
  }
  [[nodiscard]] double output_bandwidth(std::size_t a, std::size_t u) const {
    return p.platform().out_bandwidth(a, u);
  }
  [[nodiscard]] double max_speed(std::size_t u) const {
    return p.platform().processor(u).max_speed();
  }
  [[nodiscard]] std::size_t max_mode(std::size_t u) const {
    return p.platform().processor(u).max_mode();
  }
};

/// `Tables` is either ScalarTables or core::BatchEvaluator (the flat SoA
/// lookups) — same query interface, identical doubles.
template <class Tables>
struct BranchBound {
  const Problem& problem;
  const Tables& tables;
  const core::CommModel comm;
  const MappingKind kind;
  const std::uint64_t node_limit;
  const util::CancelToken cancel;
  /// Warm-start cap: subtrees with lower bound strictly above it are dead.
  /// +inf when no hint was given, which makes every `> prune_above` test
  /// vacuously false — the unhinted search is bit-for-bit unchanged.
  const double prune_above;

  EnumerationStats stats;
  std::vector<IntervalAssignment> placed;
  std::vector<char> proc_used;
  std::vector<std::size_t> procs_fast_first;  ///< branching order
  // suffix_max_w[a][k]: max single-stage compute of stages k..n_a-1.
  std::vector<std::vector<double>> suffix_max_w;
  double best_value = util::kInfinity;
  std::optional<Mapping> best_mapping;
  // Finalized weighted cycle maxima stack (monotone prefix maxima), one
  // entry per placed interval for O(1) undo.
  std::vector<double> finalized_max;

  BranchBound(const Problem& p, const Tables& t, MappingKind k,
              std::uint64_t limit, util::CancelToken token,
              std::optional<double> warm_start)
      : problem(p),
        tables(t),
        comm(p.comm_model()),
        kind(k),
        node_limit(limit),
        cancel(std::move(token)),
        prune_above(warm_start.value_or(util::kInfinity)) {
    proc_used.assign(p.platform().processor_count(), 0);
    procs_fast_first = p.platform().processors_by_max_speed_desc();
    suffix_max_w.resize(p.application_count());
    for (std::size_t a = 0; a < p.application_count(); ++a) {
      const std::size_t n = tables.stage_count(a);
      suffix_max_w[a].assign(n + 1, 0.0);
      for (std::size_t s = n; s-- > 0;) {
        // compute_sum(s, s) — the prefix-sum difference interval_value
        // evaluates — not compute(s): the two can differ by one ULP, and a
        // bound built from the larger spelling would not be admissible in
        // floating point (it could prune a bit-exact incumbent or
        // warm-start cap; interval sums dominate single-stage prefix
        // differences monotonically, so this spelling is safe for every
        // interval containing stage s).
        suffix_max_w[a][s] =
            std::max(suffix_max_w[a][s + 1], tables.compute_sum(a, s, s));
      }
    }
    finalized_max.push_back(0.0);
  }

  [[nodiscard]] double fastest_unused_speed() const {
    for (std::size_t u : procs_fast_first) {
      if (!proc_used[u]) return tables.max_speed(u);
    }
    return 0.0;  // no processor left: caller prunes via placement failure
  }

  /// Weighted cycle of placed interval `idx`, with the out-communication
  /// included only when `final_out` (successor known or sink reached).
  [[nodiscard]] double interval_value(std::size_t idx, bool final_out) const {
    const IntervalAssignment& iv = placed[idx];
    const double speed = tables.max_speed(iv.proc);

    const bool has_prev = idx > 0 && placed[idx - 1].app == iv.app;
    const double in_bw = has_prev
                             ? tables.link_bandwidth(placed[idx - 1].proc, iv.proc)
                             : tables.input_bandwidth(iv.app, iv.proc);
    const double in = tables.boundary(iv.app, iv.first) / in_bw;
    const double comp = tables.compute_sum(iv.app, iv.first, iv.last) / speed;
    double out = 0.0;
    if (final_out) {
      const bool is_last = iv.last + 1 == tables.stage_count(iv.app);
      const double out_bw =
          is_last ? tables.output_bandwidth(iv.app, iv.proc)
                  : tables.link_bandwidth(iv.proc, placed[idx + 1].proc);
      out = tables.boundary(iv.app, iv.last + 1) / out_bw;
    }
    const double cycle = comm == core::CommModel::Overlap
                             ? std::max({in, comp, out})
                             : in + comp + out;
    return tables.weight(iv.app) * cycle;
  }

  /// Admissible bound from the stages not yet placed (apps `app` onward).
  /// Computed as W * (w / s) — the same association order interval_value
  /// uses for W * (compute / speed) — so the bound is admissible *in
  /// floating point*, not just in real arithmetic: (W * w) / s can round
  /// one ULP above the value the completion actually evaluates to, which
  /// would overprune against a bit-exact incumbent or warm-start cap.
  [[nodiscard]] double remaining_bound(std::size_t app, std::size_t stage) const {
    const double s_max = fastest_unused_speed();
    if (s_max <= 0.0) return 0.0;
    double bound = 0.0;
    for (std::size_t a = app; a < problem.application_count(); ++a) {
      const std::size_t from = (a == app) ? stage : 0;
      bound = std::max(bound, tables.weight(a) * (suffix_max_w[a][from] / s_max));
    }
    return bound;
  }

  void run() {
    recurse(0, 0);
  }

  void recurse(std::size_t app, std::size_t stage) {
    if (++stats.nodes > node_limit) throw SearchLimitExceeded{};
    if (stats.nodes % kCancelCheckStride == 0 && cancel.cancelled()) {
      throw SearchCancelled{};
    }
    if (app == problem.application_count()) {
      // Complete: the last interval of the last app was finalized on
      // placement (sink out-comm), so finalized_max.back() is the value.
      const double value = finalized_max.back();
      if (value < best_value) {
        best_value = value;
        best_mapping = Mapping(placed);
      }
      ++stats.complete;
      return;
    }
    const std::size_t n = tables.stage_count(app);
    if (stage == n) {
      recurse(app + 1, 0);
      return;
    }

    const double finalized = finalized_max.back();
    if (finalized >= best_value || finalized > prune_above) return;  // prune
    const double lower = std::max(finalized, remaining_bound(app, stage));
    if (lower >= best_value || lower > prune_above) return;  // prune

    const std::size_t last_max = kind == MappingKind::OneToOne ? stage : n - 1;
    for (std::size_t last = stage; last <= last_max; ++last) {
      for (std::size_t u : procs_fast_first) {
        if (proc_used[u]) continue;
        proc_used[u] = 1;
        placed.push_back({app, stage, last, u, tables.max_mode(u)});
        const std::size_t idx = placed.size() - 1;

        // Finalize the predecessor interval (its out-link is now known) and
        // open the new one with its partial (in, compute) bound; when this
        // interval ends its application, it finalizes immediately.
        double new_max = finalized_max.back();
        if (idx > 0 && placed[idx - 1].app == app) {
          new_max = std::max(new_max, interval_value(idx - 1, true));
        }
        const bool closes_app = last + 1 == n;
        new_max = std::max(new_max, interval_value(idx, closes_app));
        finalized_max.push_back(new_max);

        if (new_max < best_value && new_max <= prune_above) {
          recurse(app, last + 1);
        }

        finalized_max.pop_back();
        placed.pop_back();
        proc_used[u] = 0;
      }
    }
  }
};

template <class Tables>
std::optional<ExactResult> run_branch_bound(const Problem& problem,
                                            const Tables& tables,
                                            MappingKind kind,
                                            std::uint64_t node_limit,
                                            util::CancelToken cancel,
                                            std::optional<double> warm_start) {
  BranchBound<Tables> search(problem, tables, kind, node_limit,
                             std::move(cancel), warm_start);
  search.run();
  if (!search.best_mapping) return std::nullopt;
  ExactResult result;
  result.value = search.best_value;
  result.mapping = std::move(*search.best_mapping);
  result.stats = search.stats;
  return result;
}

}  // namespace

std::optional<ExactResult> branch_bound_min_period(
    const Problem& problem, MappingKind kind, std::uint64_t node_limit,
    util::CancelToken cancel, std::optional<double> warm_start) {
  const core::BatchEvaluator tables(problem);
  return run_branch_bound(problem, tables, kind, node_limit, std::move(cancel),
                          warm_start);
}

std::optional<ExactResult> branch_bound_min_period_scalar(
    const Problem& problem, MappingKind kind, std::uint64_t node_limit,
    util::CancelToken cancel, std::optional<double> warm_start) {
  const ScalarTables tables{problem};
  return run_branch_bound(problem, tables, kind, node_limit, std::move(cancel),
                          warm_start);
}

}  // namespace pipeopt::exact
