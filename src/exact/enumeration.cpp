#include "exact/enumeration.hpp"

#include <vector>

namespace pipeopt::exact {
namespace {

using core::IntervalAssignment;
using core::Problem;

struct Searcher {
  const Problem& problem;
  const EnumerationOptions& options;
  const MappingVisitor& visit;
  EnumerationStats stats;
  std::vector<IntervalAssignment> placed;
  std::vector<char> proc_used;

  void run() {
    placed.reserve(problem.total_stages());
    proc_used.assign(problem.platform().processor_count(), 0);
    recurse(0, 0);
  }

  void recurse(std::size_t app, std::size_t stage) {
    if (++stats.nodes > options.node_limit) throw SearchLimitExceeded{};
    if (stats.nodes % kCancelCheckStride == 0 && options.cancel.cancelled()) {
      throw SearchCancelled{};
    }
    if (app == problem.application_count()) {
      ++stats.complete;
      visit(placed);
      return;
    }
    const std::size_t n = problem.application(app).stage_count();
    if (stage == n) {
      recurse(app + 1, 0);
      return;
    }
    const std::size_t last_max =
        options.kind == MappingKind::OneToOne ? stage : n - 1;
    const auto& platform = problem.platform();
    for (std::size_t last = stage; last <= last_max; ++last) {
      for (std::size_t u = 0; u < platform.processor_count(); ++u) {
        if (proc_used[u]) continue;
        proc_used[u] = 1;
        const std::size_t mode_count =
            options.enumerate_modes ? platform.processor(u).mode_count() : 1;
        for (std::size_t m = 0; m < mode_count; ++m) {
          const std::size_t mode =
              options.enumerate_modes ? m : platform.processor(u).max_mode();
          placed.push_back({app, stage, last, u, mode});
          recurse(app, last + 1);
          placed.pop_back();
        }
        proc_used[u] = 0;
      }
    }
  }
};

/// Saturating multiply/add on uint64.
std::uint64_t sat_mul(std::uint64_t a, std::uint64_t b) {
  std::uint64_t out = 0;
  if (__builtin_mul_overflow(a, b, &out)) return UINT64_MAX;
  return out;
}
std::uint64_t sat_add(std::uint64_t a, std::uint64_t b) {
  std::uint64_t out = 0;
  if (__builtin_add_overflow(a, b, &out)) return UINT64_MAX;
  return out;
}

}  // namespace

EnumerationStats enumerate_mappings(const Problem& problem,
                                    const EnumerationOptions& options,
                                    const MappingVisitor& visit) {
  Searcher searcher{problem, options, visit, {}, {}, {}};
  searcher.run();
  return searcher.stats;
}

std::uint64_t mapping_space_size(const Problem& problem,
                                 const EnumerationOptions& options) {
  const std::size_t p = problem.platform().processor_count();
  const std::size_t n_total = problem.total_stages();
  const std::size_t max_m = std::min(p, n_total);

  // comp[M]: number of ways to pick per-application interval counts with
  // total M, weighted by the per-application composition counts
  // C(n_a - 1, m_a - 1).
  std::vector<std::uint64_t> comp(max_m + 1, 0);
  comp[0] = 1;
  for (const auto& app : problem.applications()) {
    const std::size_t n = app.stage_count();
    // Binomials C(n-1, m-1) for m = 1..n.
    std::vector<std::uint64_t> binom(n + 1, 0);
    binom[1] = 1;
    for (std::size_t m = 2; m <= n; ++m) {
      // C(n-1, m-1) = C(n-1, m-2) * (n-m+1) / (m-1)
      binom[m] = sat_mul(binom[m - 1], n - m + 1) / (m - 1);
    }
    std::vector<std::uint64_t> next(max_m + 1, 0);
    for (std::size_t total = 0; total <= max_m; ++total) {
      if (comp[total] == 0) continue;
      if (options.kind == MappingKind::OneToOne) {
        if (total + n <= max_m) {
          next[total + n] = sat_add(next[total + n], comp[total]);
        }
        continue;
      }
      for (std::size_t m = 1; m <= n && total + m <= max_m; ++m) {
        next[total + m] = sat_add(next[total + m], sat_mul(comp[total], binom[m]));
      }
    }
    comp = std::move(next);
  }

  // weighted[M]: M! · e_M(weights) where weight_u is the mode count (or 1)
  // of processor u — the number of ordered placements of M intervals onto
  // distinct processors including mode choices.
  std::vector<std::uint64_t> sym(max_m + 1, 0);
  sym[0] = 1;
  for (std::size_t u = 0; u < p; ++u) {
    const std::uint64_t w =
        options.enumerate_modes
            ? problem.platform().processor(u).mode_count()
            : 1;
    for (std::size_t m = std::min(max_m, u + 1); m >= 1; --m) {
      sym[m] = sat_add(sym[m], sat_mul(sym[m - 1], w));
    }
  }
  std::uint64_t factorial = 1;
  std::uint64_t total = 0;
  for (std::size_t m = 0; m <= max_m; ++m) {
    if (m > 0) factorial = sat_mul(factorial, m);
    total = sat_add(total, sat_mul(comp[m], sat_mul(sym[m], factorial)));
  }
  return total;
}

}  // namespace pipeopt::exact
