#pragma once

/// \file branch_and_bound.hpp
/// Branch-and-bound period minimization — a second, independent exact
/// engine. Same search tree as the plain enumerator, plus two admissible
/// lower bounds that prune most of it:
///
///  1. *finalized-cost bound*: once an interval's successor is placed (or it
///     is the last of its application), its full weighted cycle-time is
///     known and bounds the objective from below; for the still-open
///     interval, max(in-comm, compute)/... is already admissible;
///  2. *remaining-stage bound*: the largest unplaced stage of any
///     application must run somewhere, so (W_a · w_max-remaining) divided by
///     the fastest *unused* processor bounds the final period.
///
/// Branching explores processors fastest-first so good incumbents appear
/// early. Results are bit-identical to exact_min_period (property-tested);
/// the win is reach — see bench_exact_scaling's BM_BranchBound counters.

#include <cstdint>
#include <optional>

#include "exact/exact_solvers.hpp"

namespace pipeopt::exact {

/// Branch-and-bound minimum of max_a W_a·T_a (processors at maximum speed).
/// Works on every platform class and both communication models.
///
/// `warm_start` is an optional incumbent-value hint: a value known to be
/// achievable on this instance (e.g. the optimum of an adjacent, more
/// tightly constrained sweep point). When set, subtrees whose admissible
/// lower bound *strictly* exceeds the hint are pruned in addition to the
/// usual incumbent pruning. Strictness is what keeps results bit-identical:
/// the optimal mapping's path bounds never exceed the optimum (≤ hint), so
/// the same first-in-DFS-order optimal mapping is returned — only
/// `stats.nodes`/`stats.complete` shrink. A hint below the true optimum
/// violates the contract and makes the search return std::nullopt.
/// \throws SearchLimitExceeded past node_limit; SearchCancelled when the
/// token fires (polled every kCancelCheckStride nodes).
[[nodiscard]] std::optional<ExactResult> branch_bound_min_period(
    const core::Problem& problem, MappingKind kind,
    std::uint64_t node_limit = 2'000'000'000, util::CancelToken cancel = {},
    std::optional<double> warm_start = std::nullopt);

/// Benchmark/test hook: the same search driven by the scalar object-graph
/// accessors instead of the bind-once SoA tables branch_bound_min_period
/// reads (core::BatchEvaluator). Both lookup paths return identical doubles
/// for every query, so results — value, mapping, node counts — are
/// bit-identical; only nodes/sec differs. bench_eval_hot_path measures the
/// two against each other and asserts the identity.
[[nodiscard]] std::optional<ExactResult> branch_bound_min_period_scalar(
    const core::Problem& problem, MappingKind kind,
    std::uint64_t node_limit = 2'000'000'000, util::CancelToken cancel = {},
    std::optional<double> warm_start = std::nullopt);

}  // namespace pipeopt::exact
