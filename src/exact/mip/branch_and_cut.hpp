#pragma once

/// \file branch_and_cut.hpp
/// Exact MIP solve of the interval-mapping problem: branch-and-cut over the
/// LP relaxation built by exact/mip/formulation.hpp.
///
/// The driver is a DFS over binary fixings of the interval variables
/// (dive-to-1 first, most-fractional branching), with two row generators:
/// the formulation's lazy z linking rows (separated each node until the
/// relaxation is cut-clean) and no-good cuts excluding each integral
/// candidate once it has been evaluated exactly.
///
/// **Exactness contract** — how a floating-point LP yields bit-exact
/// answers. LP numbers are only ever used as *bounds*: a node is pruned
/// only when its relaxation value is at least `incumbent + 1e-6·(1 +
/// |incumbent|)` (an over-margin no FP noise of this model's scale
/// reaches), or when phase-1 simplex proves the node infeasible. Every
/// integral candidate is decoded to a `core::Mapping` and re-evaluated
/// through `core::BatchEvaluator` — bit-identical to `core::evaluate`, the
/// same arbiter the enumeration and branch-and-bound backends use — and
/// constraint acceptance uses the exact `core::ConstraintSet::satisfied_by`
/// predicate, never the loosened LP rows. After a candidate is evaluated
/// (accepted or not) a no-good cut removes exactly that point and the node
/// is re-solved, so even candidates whose LP value ties within the pruning
/// margin are enumerated rather than assumed away. The result is the same
/// optimum, to the bit, that exhaustive enumeration returns.

#include <optional>

#include "core/objectives.hpp"
#include "core/problem.hpp"
#include "exact/enumeration.hpp"
#include "exact/exact_solvers.hpp"

namespace pipeopt::exact::mip {

/// Branch-and-cut controls; mirrors exact::EnumerationOptions so the two
/// engines are drop-in interchangeable behind the backend seam.
struct MipOptions {
  MappingKind kind = MappingKind::Interval;
  /// Enumerate every speed mode per processor; when false the fastest mode
  /// is used (the §4 normalization for performance-only problems).
  bool enumerate_modes = false;
  /// Upper bound on branch-and-cut nodes; exceeded -> SearchLimitExceeded.
  std::uint64_t node_limit = 100'000'000;
  /// Cooperative cancellation, polled at every node; fired -> SearchCancelled.
  util::CancelToken cancel;
};

/// Minimizes `objective` over all mappings of the given kind subject to
/// `constraints`. Same contract as `exact::exact_minimize`: std::nullopt
/// when no feasible mapping exists, identical `value` and a mapping that
/// re-evaluates to it. `stats.nodes` counts branch-and-cut nodes,
/// `stats.complete` the integral candidates evaluated exactly.
/// \throws SearchLimitExceeded past options.node_limit, SearchCancelled on
/// a fired cancel token.
[[nodiscard]] std::optional<ExactResult> mip_minimize(
    const core::Problem& problem, const MipOptions& options,
    Objective objective, const core::ConstraintSet& constraints = {});

}  // namespace pipeopt::exact::mip
