#pragma once

/// \file formulation.hpp
/// MIP formulation of the interval-mapping problem — the structurally
/// independent model behind the `mip-branch-cut` exact backend.
///
/// Variables. One binary x_(a,f,l,u,m) per candidate interval: application
/// a's stages [f, l] hosted by processor u in speed mode m (one-to-one
/// mappings restrict to f = l; modes collapse to the fastest unless the
/// problem's energy side requires enumerating them — the same §4
/// normalization the enumeration engine applies). On fully heterogeneous
/// platforms, a continuous z_(a,i,u,v) per internal boundary i carries the
/// "interval ending at stage i-1 on u hands data to the interval starting at
/// stage i on v" indicator; on uniform-bandwidth platforms every
/// communication cost is already known per x variable (consecutive intervals
/// always occupy distinct processors, and all links share one capacity b),
/// so no pair variables exist at all. Continuous P_a / L_a carry each
/// application's period / latency when referenced; T carries the weighted
/// objective.
///
/// Rows. Coverage (each stage in exactly one chosen interval — which forces
/// a consecutive-interval partition), processor capacity (Σ x per processor
/// <= 1 — the exclusivity rule of §3.3), cost rows lower-bounding P_a / L_a
/// by the Eq. 3/4/5 pieces (max pieces become one row each under Overlap,
/// per-interval sums under NoOverlap), T >= W_a · P_a (Eq. 6), and threshold
/// rows for the constrained criteria. The z linking rows
/// z >= x_end + x_start - 1 are generated lazily by `separate` — they are
/// the "cut" half of branch-and-cut — and z needs no upper bound: it only
/// ever raises cost lower bounds, so the LP keeps it at the linking floor,
/// which at integral x IS the exact crossing indicator.
///
/// Tolerances. Threshold rows are loosened by +1e-7·(1+|bound|) so the LP
/// never cuts off a mapping that `core::ConstraintSet::satisfied_by` (which
/// compares through util::approx_le) would accept; the branch-and-cut driver
/// re-checks every integral candidate with the exact predicate, so loosening
/// only ever widens the search, never the answer.
///
/// Symmetry. When every processor is provably interchangeable (identical
/// speed ladders, static energy and bandwidth rows, compared as exact
/// doubles), any mapping can be relabeled so that the interval whose first
/// stage is the canonically j-th stage overall uses a processor index <= j —
/// relabeling identical processors changes no evaluated double, so one
/// representative per permutation class is enough. `build_x_vars` therefore
/// drops x_(a,f,l,u,m) with u beyond that stage prefix, which collapses the
/// p! copies of each optimum that no-good cuts would otherwise enumerate one
/// by one on fully homogeneous platforms.

#include <cstddef>
#include <optional>
#include <vector>

#include "core/mapping.hpp"
#include "core/objectives.hpp"
#include "core/problem.hpp"
#include "exact/exact_solvers.hpp"
#include "exact/mip/lp.hpp"

namespace pipeopt::exact::mip {

/// One candidate interval variable x_(a,f,l,u,m).
struct IntervalVar {
  std::size_t app = 0;
  std::size_t first = 0;
  std::size_t last = 0;
  std::size_t proc = 0;
  std::size_t mode = 0;
};

/// Builds and owns the LP relaxation of one (problem, objective, constraint,
/// kind) instance, plus the lazy-row separator and the integral-solution
/// decoders the branch-and-cut driver needs.
class Formulation {
 public:
  Formulation(const core::Problem& problem, Objective objective,
              const core::ConstraintSet& constraints, MappingKind kind,
              bool enumerate_modes);

  /// Base relaxation: all static rows, no lazy rows. Callers copy this and
  /// append the cut pool plus per-node fixing rows.
  [[nodiscard]] const LinearProgram& lp() const noexcept { return lp_; }

  /// The interval variables, aligned with columns [0, x_count()).
  [[nodiscard]] const std::vector<IntervalVar>& x_vars() const noexcept {
    return x_;
  }
  [[nodiscard]] std::size_t x_count() const noexcept { return x_.size(); }

  /// Lazy separation: returns the z linking rows violated by `solution`
  /// (each row emitted at most once over the Formulation's lifetime; rows
  /// are globally valid, so callers keep them in a shared pool).
  [[nodiscard]] std::vector<Row> separate(const std::vector<double>& solution);

  /// Index of the most fractional x column, or nullopt when all x values
  /// are integral (within tolerance) — the branching rule.
  [[nodiscard]] std::optional<std::size_t> most_fractional(
      const std::vector<double>& solution) const;

  /// Decodes the x part of an integral solution into a Mapping.
  [[nodiscard]] core::Mapping extract_mapping(
      const std::vector<double>& solution) const;

  /// No-good cut excluding exactly the x assignment of `solution`:
  /// Σ_{x̂=0} x - Σ_{x̂=1} x >= 1 - |{x̂=1}|. Globally valid (the driver adds
  /// it after evaluating a candidate exactly, whether accepted or rejected,
  /// so the same integral point never resurfaces).
  [[nodiscard]] Row no_good_cut(const std::vector<double>& solution) const;

 private:
  struct ZVar {
    std::size_t app = 0;
    std::size_t boundary = 0;  ///< internal boundary index i in [1, n-1]
    std::size_t from = 0;      ///< processor ending at stage boundary-1
    std::size_t to = 0;        ///< processor starting at stage boundary
    double cost = 0.0;         ///< δ^i / bandwidth(from, to)
  };

  void build_x_vars(const core::ConstraintSet& constraints);
  void build_z_vars();
  void build_static_rows(const core::ConstraintSet& constraints);

  const core::Problem& problem_;
  Objective objective_;
  MappingKind kind_;
  bool enumerate_modes_;
  bool needs_period_ = false;
  bool needs_latency_ = false;
  bool procs_interchangeable_ = false;  ///< enables the symmetry reduction

  std::vector<IntervalVar> x_;
  std::vector<ZVar> z_;
  std::size_t z_base_ = 0;     ///< column of z_[0]
  std::size_t period_col_ = 0; ///< column of P_0 (P_a at +a); valid iff needs_period_
  std::size_t latency_col_ = 0;///< column of L_0; valid iff needs_latency_
  std::size_t objective_col_ = 0;  ///< column of T; valid iff objective != Energy

  /// Per z var: the x columns whose interval ends at stage boundary-1 on
  /// `from` / starts at stage boundary on `to` — the linking-row operands.
  std::vector<std::vector<std::size_t>> z_ending_;
  std::vector<std::vector<std::size_t>> z_starting_;
  std::vector<char> linking_emitted_;  ///< one flag per z var
  LinearProgram lp_;
};

/// Loosened threshold used by the LP rows: bound + 1e-7·(1 + |bound|),
/// strictly wider than the util::approx_le acceptance band.
[[nodiscard]] double loosened_bound(double bound) noexcept;

}  // namespace pipeopt::exact::mip
