#include "exact/mip/formulation.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace pipeopt::exact::mip {
namespace {

constexpr double kIntegralityTol = 1e-6;
constexpr double kSeparationTol = 1e-7;

/// Known cycle-time pieces of one candidate interval — the parts that do
/// not depend on the neighbour intervals' processors. On uniform-bandwidth
/// platforms that is everything (consecutive intervals always occupy
/// distinct processors, so boundary i is crossed at the one capacity b);
/// on fully heterogeneous platforms the internal pieces are carried by the
/// z variables instead and contribute zero here.
struct KnownPieces {
  double in_comm = 0.0;
  double compute = 0.0;
  double out_comm = 0.0;

  [[nodiscard]] double combined(core::CommModel model) const noexcept {
    if (model == core::CommModel::NoOverlap)
      return in_comm + compute + out_comm;
    return std::max(in_comm, std::max(compute, out_comm));
  }
};

KnownPieces known_pieces(const core::Problem& problem, const IntervalVar& v) {
  const core::Application& app = problem.application(v.app);
  const core::Platform& plat = problem.platform();
  const std::size_t n = app.stage_count();
  const bool uniform = plat.has_uniform_bandwidth();
  KnownPieces pieces;
  pieces.compute =
      app.total_compute(v.first, v.last) / plat.processor(v.proc).speed(v.mode);
  if (v.first == 0)
    pieces.in_comm = app.boundary_size(0) / plat.in_bandwidth(v.app, v.proc);
  else if (uniform)
    pieces.in_comm = app.boundary_size(v.first) / plat.uniform_bandwidth();
  if (v.last == n - 1)
    pieces.out_comm = app.boundary_size(n) / plat.out_bandwidth(v.app, v.proc);
  else if (uniform)
    pieces.out_comm = app.boundary_size(v.last + 1) / plat.uniform_bandwidth();
  return pieces;
}

/// This interval's additive contribution to Eq. 5 latency: compute + the
/// produced-boundary transfer, plus the external input for the first
/// interval. Internal in-comm is never part of latency (each internal
/// boundary is counted once, as the producer's out piece).
double latency_contribution(const core::Problem& problem, const IntervalVar& v) {
  const KnownPieces pieces = known_pieces(problem, v);
  return (v.first == 0 ? pieces.in_comm : 0.0) + pieces.compute +
         pieces.out_comm;
}

double threshold_or_inf(const std::optional<core::Thresholds>& t,
                        std::size_t a) {
  if (!t || a >= t->size() || t->is_unconstrained(a))
    return std::numeric_limits<double>::infinity();
  return t->bound(a);
}

/// True when every processor can stand in for every other without changing a
/// single evaluated double: identical speed ladders and static energy, one
/// shared link capacity, and per-application external bandwidths equal across
/// processors. Exact double comparisons — any difference, however small,
/// disables the symmetry reduction rather than risking a non-representative
/// drop.
bool processors_interchangeable(const core::Problem& problem) {
  const core::Platform& plat = problem.platform();
  const std::size_t p = plat.processor_count();
  if (p < 2) return false;
  if (!plat.has_uniform_bandwidth()) return false;
  const core::Processor& first = plat.processor(0);
  for (std::size_t u = 1; u < p; ++u) {
    const core::Processor& proc = plat.processor(u);
    if (proc.speeds() != first.speeds()) return false;
    if (proc.static_energy() != first.static_energy()) return false;
  }
  for (std::size_t a = 0; a < problem.application_count(); ++a) {
    for (std::size_t u = 1; u < p; ++u) {
      if (plat.in_bandwidth(a, u) != plat.in_bandwidth(a, 0)) return false;
      if (plat.out_bandwidth(a, u) != plat.out_bandwidth(a, 0)) return false;
    }
  }
  return true;
}

}  // namespace

double loosened_bound(double bound) noexcept {
  return bound + 1e-7 * (1.0 + std::abs(bound));
}

Formulation::Formulation(const core::Problem& problem, Objective objective,
                         const core::ConstraintSet& constraints,
                         MappingKind kind, bool enumerate_modes)
    : problem_(problem),
      objective_(objective),
      kind_(kind),
      enumerate_modes_(enumerate_modes),
      procs_interchangeable_(processors_interchangeable(problem)) {
  needs_period_ =
      objective == Objective::Period || constraints.period.has_value();
  needs_latency_ =
      objective == Objective::Latency || constraints.latency.has_value();

  build_x_vars(constraints);
  build_z_vars();

  const std::size_t apps = problem_.application_count();
  z_base_ = x_.size();
  std::size_t next = z_base_ + z_.size();
  if (needs_period_) {
    period_col_ = next;
    next += apps;
  }
  if (needs_latency_) {
    latency_col_ = next;
    next += apps;
  }
  if (objective_ != Objective::Energy) objective_col_ = next++;
  lp_.columns = next;
  lp_.objective.assign(lp_.columns, 0.0);
  if (objective_ == Objective::Energy) {
    const core::Platform& plat = problem_.platform();
    for (std::size_t j = 0; j < x_.size(); ++j)
      lp_.objective[j] = plat.processor_energy(x_[j].proc, x_[j].mode);
  } else {
    lp_.objective[objective_col_] = 1.0;
  }

  build_static_rows(constraints);
  linking_emitted_.assign(z_.size(), 0);
}

void Formulation::build_x_vars(const core::ConstraintSet& constraints) {
  const core::Platform& plat = problem_.platform();
  const double energy_cap =
      constraints.energy_budget
          ? loosened_bound(*constraints.energy_budget)
          : std::numeric_limits<double>::infinity();
  std::size_t stage_prefix = 0;  ///< stages canonically before (a, f)
  for (std::size_t a = 0; a < problem_.application_count(); ++a) {
    const std::size_t n = problem_.application(a).stage_count();
    const double period_cap =
        loosened_bound(threshold_or_inf(constraints.period, a));
    const double latency_cap =
        loosened_bound(threshold_or_inf(constraints.latency, a));
    for (std::size_t f = 0; f < n; ++f) {
      const std::size_t last_max = kind_ == MappingKind::OneToOne ? f : n - 1;
      // Symmetry reduction (see formulation.hpp): with interchangeable
      // processors, the interval starting at stage (a, f) has at most
      // stage_prefix + f intervals before it in canonical order, so
      // relabeling by order of first use keeps its processor index within
      // that prefix. Dropping higher indices removes permutation copies
      // only, never a distinct mapping value.
      const std::size_t proc_limit =
          procs_interchangeable_
              ? std::min(plat.processor_count() - 1, stage_prefix + f)
              : plat.processor_count() - 1;
      for (std::size_t l = f; l <= last_max; ++l) {
        for (std::size_t u = 0; u <= proc_limit; ++u) {
          const std::size_t top = plat.processor(u).max_mode();
          const std::size_t lo = enumerate_modes_ ? 0 : top;
          for (std::size_t m = lo; m <= top; ++m) {
            IntervalVar v{a, f, l, u, m};
            // Presolve: drop variables that no tolerance-feasible mapping
            // can contain. Each test compares a lower bound on the
            // variable's own contribution against the loosened cap, so a
            // drop can never exclude an acceptable mapping.
            if (plat.processor_energy(u, m) > energy_cap) continue;
            if (known_pieces(problem_, v).combined(problem_.comm_model()) >
                period_cap)
              continue;
            if (latency_contribution(problem_, v) > latency_cap) continue;
            x_.push_back(v);
          }
        }
      }
    }
    stage_prefix += n;
  }
}

void Formulation::build_z_vars() {
  const core::Platform& plat = problem_.platform();
  if (plat.has_uniform_bandwidth()) return;
  if (!needs_period_ && !needs_latency_) return;
  const std::size_t p = plat.processor_count();
  // Surviving end/start processors per (app, boundary), from the presolved
  // x set: a pair variable only exists when both sides can happen.
  for (std::size_t a = 0; a < problem_.application_count(); ++a) {
    const core::Application& app = problem_.application(a);
    for (std::size_t b = 1; b < app.stage_count(); ++b) {
      if (app.boundary_size(b) <= 0.0) continue;
      std::vector<std::vector<std::size_t>> ending(p), starting(p);
      for (std::size_t j = 0; j < x_.size(); ++j) {
        if (x_[j].app != a) continue;
        if (x_[j].last + 1 == b) ending[x_[j].proc].push_back(j);
        if (x_[j].first == b) starting[x_[j].proc].push_back(j);
      }
      for (std::size_t u = 0; u < p; ++u) {
        if (ending[u].empty()) continue;
        for (std::size_t v = 0; v < p; ++v) {
          if (u == v || starting[v].empty()) continue;
          z_.push_back(
              {a, b, u, v, app.boundary_size(b) / plat.bandwidth(u, v)});
          z_ending_.push_back(ending[u]);
          z_starting_.push_back(starting[v]);
        }
      }
    }
  }
}

void Formulation::build_static_rows(const core::ConstraintSet& constraints) {
  const core::Platform& plat = problem_.platform();
  const std::size_t apps = problem_.application_count();
  const bool no_overlap = problem_.comm_model() == core::CommModel::NoOverlap;

  // Coverage: each stage of each application in exactly one chosen interval.
  for (std::size_t a = 0; a < apps; ++a) {
    const std::size_t n = problem_.application(a).stage_count();
    for (std::size_t k = 0; k < n; ++k) {
      Row row;
      row.sense = RowSense::Eq;
      row.rhs = 1.0;
      for (std::size_t j = 0; j < x_.size(); ++j) {
        if (x_[j].app == a && x_[j].first <= k && k <= x_[j].last)
          row.coeffs.emplace_back(j, 1.0);
      }
      lp_.rows.push_back(std::move(row));
    }
  }

  // Processor exclusivity: at most one interval per processor (§3.3).
  for (std::size_t u = 0; u < plat.processor_count(); ++u) {
    Row row;
    row.sense = RowSense::Le;
    row.rhs = 1.0;
    for (std::size_t j = 0; j < x_.size(); ++j)
      if (x_[j].proc == u) row.coeffs.emplace_back(j, 1.0);
    if (!row.coeffs.empty()) lp_.rows.push_back(std::move(row));
  }

  // z lookup per (app, boundary, end proc) / (app, boundary, start proc),
  // used to splice pair costs into the NoOverlap per-interval rows.
  auto z_into = [&](std::size_t a, std::size_t b, std::size_t to) {
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < z_.size(); ++i)
      if (z_[i].app == a && z_[i].boundary == b && z_[i].to == to)
        out.push_back(i);
    return out;
  };
  auto z_from = [&](std::size_t a, std::size_t b, std::size_t from) {
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < z_.size(); ++i)
      if (z_[i].app == a && z_[i].boundary == b && z_[i].from == from)
        out.push_back(i);
    return out;
  };

  // Period cost rows (Eq. 3 / Eq. 4 pieces lower-bounding P_a).
  if (needs_period_) {
    for (std::size_t j = 0; j < x_.size(); ++j) {
      const IntervalVar& v = x_[j];
      const std::size_t n = problem_.application(v.app).stage_count();
      const KnownPieces pieces = known_pieces(problem_, v);
      Row row;
      row.sense = RowSense::Ge;
      row.rhs = 0.0;
      row.coeffs.emplace_back(period_col_ + v.app, 1.0);
      if (no_overlap) {
        // P_a >= total cycle time of the chosen interval: the known pieces
        // ride on x, the heterogeneous boundary pieces on the z indicators
        // of the interval's own in/out boundaries.
        const double known = pieces.combined(core::CommModel::NoOverlap);
        if (known > 0.0) row.coeffs.emplace_back(j, -known);
        if (v.first > 0)
          for (std::size_t i : z_into(v.app, v.first, v.proc))
            row.coeffs.emplace_back(z_base_ + i, -z_[i].cost);
        if (v.last + 1 < n)
          for (std::size_t i : z_from(v.app, v.last + 1, v.proc))
            row.coeffs.emplace_back(z_base_ + i, -z_[i].cost);
        if (row.coeffs.size() > 1) lp_.rows.push_back(std::move(row));
      } else {
        const double known = pieces.combined(core::CommModel::Overlap);
        if (known > 0.0) {
          row.coeffs.emplace_back(j, -known);
          lp_.rows.push_back(std::move(row));
        }
      }
    }
    if (!no_overlap) {
      // Overlap: each heterogeneous boundary transfer alone bounds P_a.
      for (std::size_t i = 0; i < z_.size(); ++i) {
        if (z_[i].cost <= 0.0) continue;
        Row row;
        row.sense = RowSense::Ge;
        row.rhs = 0.0;
        row.coeffs.emplace_back(period_col_ + z_[i].app, 1.0);
        row.coeffs.emplace_back(z_base_ + i, -z_[i].cost);
        lp_.rows.push_back(std::move(row));
      }
    }
  }

  // Latency rows (Eq. 5): one per application.
  if (needs_latency_) {
    for (std::size_t a = 0; a < apps; ++a) {
      Row row;
      row.sense = RowSense::Ge;
      row.rhs = 0.0;
      row.coeffs.emplace_back(latency_col_ + a, 1.0);
      for (std::size_t j = 0; j < x_.size(); ++j) {
        if (x_[j].app != a) continue;
        const double c = latency_contribution(problem_, x_[j]);
        if (c > 0.0) row.coeffs.emplace_back(j, -c);
      }
      for (std::size_t i = 0; i < z_.size(); ++i) {
        if (z_[i].app == a && z_[i].cost > 0.0)
          row.coeffs.emplace_back(z_base_ + i, -z_[i].cost);
      }
      lp_.rows.push_back(std::move(row));
    }
  }

  // Weighted objective rows T >= W_a · P_a (or L_a) — Eq. 6.
  if (objective_ != Objective::Energy) {
    const std::size_t base =
        objective_ == Objective::Period ? period_col_ : latency_col_;
    for (std::size_t a = 0; a < apps; ++a) {
      Row row;
      row.sense = RowSense::Ge;
      row.rhs = 0.0;
      row.coeffs.emplace_back(objective_col_, 1.0);
      row.coeffs.emplace_back(base + a,
                              -problem_.application(a).weight());
      lp_.rows.push_back(std::move(row));
    }
  }

  // Threshold rows, loosened so the LP never cuts a mapping the exact
  // tolerance-band predicate would accept.
  for (std::size_t a = 0; a < apps; ++a) {
    const double pb = threshold_or_inf(constraints.period, a);
    if (std::isfinite(pb))
      lp_.rows.push_back(
          {{{period_col_ + a, 1.0}}, RowSense::Le, loosened_bound(pb)});
    const double lb = threshold_or_inf(constraints.latency, a);
    if (std::isfinite(lb))
      lp_.rows.push_back(
          {{{latency_col_ + a, 1.0}}, RowSense::Le, loosened_bound(lb)});
  }
  if (constraints.energy_budget) {
    Row row;
    row.sense = RowSense::Le;
    row.rhs = loosened_bound(*constraints.energy_budget);
    for (std::size_t j = 0; j < x_.size(); ++j) {
      const double e = plat.processor_energy(x_[j].proc, x_[j].mode);
      if (e > 0.0) row.coeffs.emplace_back(j, e);
    }
    lp_.rows.push_back(std::move(row));
  }
}

std::vector<Row> Formulation::separate(const std::vector<double>& solution) {
  std::vector<Row> violated;
  for (std::size_t i = 0; i < z_.size(); ++i) {
    if (linking_emitted_[i]) continue;
    double lhs = -1.0 - solution[z_base_ + i];
    for (std::size_t j : z_ending_[i]) lhs += solution[j];
    for (std::size_t j : z_starting_[i]) lhs += solution[j];
    if (lhs <= kSeparationTol) continue;
    Row row;  // z - Σ x_end - Σ x_start >= -1
    row.sense = RowSense::Ge;
    row.rhs = -1.0;
    row.coeffs.emplace_back(z_base_ + i, 1.0);
    for (std::size_t j : z_ending_[i]) row.coeffs.emplace_back(j, -1.0);
    for (std::size_t j : z_starting_[i]) row.coeffs.emplace_back(j, -1.0);
    violated.push_back(std::move(row));
    linking_emitted_[i] = 1;
  }
  return violated;
}

std::optional<std::size_t> Formulation::most_fractional(
    const std::vector<double>& solution) const {
  std::optional<std::size_t> best;
  double best_dist = kIntegralityTol;
  for (std::size_t j = 0; j < x_.size(); ++j) {
    const double dist = std::abs(solution[j] - std::round(solution[j]));
    if (dist > best_dist) {
      best = j;
      best_dist = dist;
    }
  }
  return best;
}

core::Mapping Formulation::extract_mapping(
    const std::vector<double>& solution) const {
  std::vector<core::IntervalAssignment> intervals;
  for (std::size_t j = 0; j < x_.size(); ++j) {
    if (solution[j] > 0.5) {
      const IntervalVar& v = x_[j];
      intervals.push_back({v.app, v.first, v.last, v.proc, v.mode});
    }
  }
  return core::Mapping(std::move(intervals));
}

Row Formulation::no_good_cut(const std::vector<double>& solution) const {
  Row row;
  row.sense = RowSense::Ge;
  double ones = 0.0;
  for (std::size_t j = 0; j < x_.size(); ++j) {
    if (solution[j] > 0.5) {
      row.coeffs.emplace_back(j, -1.0);
      ones += 1.0;
    } else {
      row.coeffs.emplace_back(j, 1.0);
    }
  }
  row.rhs = 1.0 - ones;
  return row;
}

}  // namespace pipeopt::exact::mip
