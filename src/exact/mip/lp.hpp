#pragma once

/// \file lp.hpp
/// A small dense linear-programming solver — the relaxation engine under
/// the MIP exact backend (exact/mip/branch_and_cut.hpp).
///
/// Scope is deliberately narrow: minimize c·x over {x >= 0 : A x {<=,=,>=} b}
/// with a few hundred rows and columns, the sizes the interval-mapping
/// formulation produces for the instances the exact tier solves anyway.
/// The implementation is the classic two-phase primal simplex on a dense
/// tableau: phase 1 drives artificial variables out of an auxiliary
/// objective (detecting infeasibility), phase 2 optimizes the real one.
/// Dantzig pricing with an automatic switch to Bland's rule guards against
/// cycling on degenerate bases; an iteration cap turns pathological cases
/// into a typed `IterationLimit` instead of a hang (the branch-and-cut
/// driver treats that as "no usable bound", never as proof).
///
/// The solver is float-honest, not exact: callers that need exactness
/// (the MIP backend's optimality claim) must re-verify candidate solutions
/// with exact arithmetic of their own — see branch_and_cut.cpp, which
/// re-evaluates every integral candidate through core::BatchEvaluator and
/// prunes only with a safety margin.

#include <cstddef>
#include <utility>
#include <vector>

namespace pipeopt::exact::mip {

/// Row sense of one linear constraint.
enum class RowSense { Le, Eq, Ge };

/// One constraint: sum of coeffs·x {<=,=,>=} rhs. Column indices must be
/// unique within a row and < LinearProgram::columns.
struct Row {
  std::vector<std::pair<std::size_t, double>> coeffs;
  RowSense sense = RowSense::Le;
  double rhs = 0.0;
};

/// min objective·x subject to rows, x >= 0 (every column non-negative).
struct LinearProgram {
  std::size_t columns = 0;
  std::vector<double> objective;  ///< size `columns`; missing tail = 0
  std::vector<Row> rows;
};

enum class LpStatus {
  Optimal,         ///< solution attained
  Infeasible,      ///< constraint system has no non-negative solution
  Unbounded,       ///< objective unbounded below over the feasible region
  IterationLimit,  ///< simplex hit its iteration cap before concluding
};

[[nodiscard]] const char* to_string(LpStatus s) noexcept;

/// Solution of one solve_lp call. `values` is meaningful only for Optimal.
struct LpSolution {
  LpStatus status = LpStatus::Infeasible;
  double objective = 0.0;
  std::vector<double> values;  ///< per column, size LinearProgram::columns
};

/// Solves the program; see file comment for the method and its guarantees.
/// `max_iterations` of 0 picks an automatic cap scaled to the problem size.
[[nodiscard]] LpSolution solve_lp(const LinearProgram& lp,
                                  std::size_t max_iterations = 0);

}  // namespace pipeopt::exact::mip
