#include "exact/mip/branch_and_cut.hpp"

#include <cmath>
#include <utility>
#include <vector>

#include "core/eval_batch.hpp"
#include "core/evaluation.hpp"
#include "exact/mip/formulation.hpp"
#include "exact/mip/lp.hpp"

namespace pipeopt::exact::mip {
namespace {

constexpr int kMaxSeparationRounds = 64;

double objective_value(Objective objective, const core::Metrics& metrics) {
  switch (objective) {
    case Objective::Period: return metrics.max_weighted_period;
    case Objective::Latency: return metrics.max_weighted_latency;
    case Objective::Energy: return metrics.energy;
  }
  return 0.0;
}

/// Pruning margin: LP bounds discard a subtree only when they clear the
/// incumbent by this much, so FP noise in the relaxation can never hide
/// the true optimum. Candidates inside the margin are enumerated via
/// no-good cuts instead.
double prune_margin(double incumbent) {
  return 1e-6 * (1.0 + std::abs(incumbent));
}

struct Node {
  /// (x column, value) fixings accumulated along the DFS path.
  std::vector<std::pair<std::size_t, int>> fixings;
};

Row fixing_row(std::size_t column, int value) {
  Row row;
  row.coeffs.emplace_back(column, 1.0);
  if (value == 0) {
    row.sense = RowSense::Le;
    row.rhs = 0.0;
  } else {
    row.sense = RowSense::Ge;
    row.rhs = 1.0;
  }
  return row;
}

}  // namespace

std::optional<ExactResult> mip_minimize(const core::Problem& problem,
                                        const MipOptions& options,
                                        Objective objective,
                                        const core::ConstraintSet& constraints) {
  Formulation form(problem, objective, constraints, options.kind,
                   options.enumerate_modes);
  core::BatchEvaluator evaluator(problem);

  std::vector<Row> pool;  // lazy linking rows + no-good cuts, globally valid
  std::vector<Node> stack;
  stack.push_back({});
  std::optional<ExactResult> best;
  EnumerationStats stats;

  // Evaluates one integral candidate with the exact machinery, updates the
  // incumbent, and excludes the point so the node can be re-solved.
  auto take_candidate = [&](const std::vector<double>& solution) {
    core::Mapping mapping = form.extract_mapping(solution);
    ++stats.complete;
    const core::Metrics& metrics = evaluator.evaluate(mapping);
    if (constraints.satisfied_by(metrics)) {
      const double value = objective_value(objective, metrics);
      if (!best || value < best->value)
        best = ExactResult{value, std::move(mapping), {}};
    }
    pool.push_back(form.no_good_cut(solution));
  };

  while (!stack.empty()) {
    Node node = std::move(stack.back());
    stack.pop_back();
    ++stats.nodes;
    if (stats.nodes > options.node_limit) throw SearchLimitExceeded();
    if (options.cancel.cancelled()) throw SearchCancelled();

    LinearProgram lp = form.lp();
    lp.rows.insert(lp.rows.end(), pool.begin(), pool.end());
    for (const auto& [column, value] : node.fixings)
      lp.rows.push_back(fixing_row(column, value));

    LpSolution sol;
    bool pruned = false;
    for (int round = 0; round < kMaxSeparationRounds; ++round) {
      sol = solve_lp(lp);
      if (sol.status == LpStatus::Infeasible) {
        pruned = true;  // phase-1 proof: no mapping in this subtree
        break;
      }
      if (sol.status != LpStatus::Optimal) break;  // no usable bound
      if (best && sol.objective >= best->value + prune_margin(best->value)) {
        pruned = true;
        break;
      }
      std::vector<Row> cuts = form.separate(sol.values);
      if (cuts.empty()) break;
      for (Row& cut : cuts) {
        lp.rows.push_back(cut);
        pool.push_back(std::move(cut));
      }
    }
    if (pruned) continue;

    if (sol.status == LpStatus::Optimal) {
      const std::optional<std::size_t> frac = form.most_fractional(sol.values);
      if (!frac) {
        take_candidate(sol.values);
        // Re-solve the same subproblem with the candidate excluded: any
        // other integral point here has LP value >= this node's bound, so
        // the loop terminates once the bound clears the pruning margin.
        stack.push_back(std::move(node));
        continue;
      }
      Node zero = node;
      zero.fixings.emplace_back(*frac, 0);
      Node one = std::move(node);
      one.fixings.emplace_back(*frac, 1);
      stack.push_back(std::move(zero));
      stack.push_back(std::move(one));  // explored first: dive toward 1
      continue;
    }

    // The relaxation gave no verdict (iteration limit / numerical noise).
    // Never prune on that: branch on the lowest unfixed column so the
    // subtree still gets enumerated, or — with everything fixed — decode
    // the fixings directly and close the node exactly.
    std::vector<char> fixed(form.x_count(), 0);
    for (const auto& [column, value] : node.fixings) fixed[column] = 1;
    std::size_t branch = form.x_count();
    for (std::size_t j = 0; j < form.x_count(); ++j) {
      if (!fixed[j]) {
        branch = j;
        break;
      }
    }
    if (branch < form.x_count()) {
      Node zero = node;
      zero.fixings.emplace_back(branch, 0);
      Node one = std::move(node);
      one.fixings.emplace_back(branch, 1);
      stack.push_back(std::move(zero));
      stack.push_back(std::move(one));
      continue;
    }
    std::vector<double> forced(lp.columns, 0.0);
    for (const auto& [column, value] : node.fixings)
      forced[column] = static_cast<double>(value);
    core::Mapping candidate = form.extract_mapping(forced);
    const bool valid = !candidate.validate(problem).has_value();
    if (valid) take_candidate(forced);
  }

  if (!best) return std::nullopt;
  best->stats = stats;
  return best;
}

}  // namespace pipeopt::exact::mip
