#include "exact/mip/lp.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace pipeopt::exact::mip {
namespace {

constexpr double kPivotTol = 1e-9;   // smallest usable pivot element
constexpr double kCostTol = 1e-9;    // reduced-cost improvement threshold
constexpr double kFeasTol = 1e-7;    // phase-1 residual counted as feasible

/// Dense simplex tableau. Columns are [structural | slack/surplus |
/// artificial], each row additionally carries its rhs; `basis[i]` names the
/// column currently basic in row i. The cost row holds reduced costs and the
/// negated objective value in its rhs slot.
class Tableau {
 public:
  Tableau(const LinearProgram& lp, std::size_t max_iterations)
      : structural_(lp.columns), iterations_left_(max_iterations) {
    const std::size_t m = lp.rows.size();
    // Count auxiliary columns first so the width is known up front.
    std::size_t slacks = 0;
    std::size_t artificials = 0;
    for (const Row& row : lp.rows) {
      const bool flip = row.rhs < 0.0;
      const RowSense sense = flip ? flipped(row.sense) : row.sense;
      if (sense != RowSense::Eq) ++slacks;
      if (sense != RowSense::Le) ++artificials;
    }
    width_ = structural_ + slacks + artificials;
    first_artificial_ = structural_ + slacks;
    rows_.assign(m, std::vector<double>(width_ + 1, 0.0));
    basis_.assign(m, 0);
    cost_.assign(width_ + 1, 0.0);

    std::size_t next_slack = structural_;
    std::size_t next_artificial = first_artificial_;
    for (std::size_t i = 0; i < m; ++i) {
      const Row& row = lp.rows[i];
      const bool flip = row.rhs < 0.0;
      const double sign = flip ? -1.0 : 1.0;
      const RowSense sense = flip ? flipped(row.sense) : row.sense;
      std::vector<double>& out = rows_[i];
      for (const auto& [col, coeff] : row.coeffs) out[col] += sign * coeff;
      out[width_] = sign * row.rhs;
      if (sense == RowSense::Le) {
        out[next_slack] = 1.0;
        basis_[i] = next_slack++;
      } else if (sense == RowSense::Ge) {
        out[next_slack++] = -1.0;
        out[next_artificial] = 1.0;
        basis_[i] = next_artificial++;
      } else {
        out[next_artificial] = 1.0;
        basis_[i] = next_artificial++;
      }
    }
  }

  /// Phase 1: minimize the sum of artificials.
  [[nodiscard]] LpStatus make_feasible() {
    if (first_artificial_ == width_)  // all-slack start basis
      return LpStatus::Optimal;
    std::fill(cost_.begin(), cost_.end(), 0.0);
    for (std::size_t j = first_artificial_; j < width_; ++j) cost_[j] = 1.0;
    // Price out the artificial start basis.
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      if (basis_[i] >= first_artificial_) {
        for (std::size_t j = 0; j <= width_; ++j) cost_[j] -= rows_[i][j];
      }
    }
    // The phase-1 objective is bounded below by zero, so an "unbounded"
    // verdict here can only be numerical noise; lump it with the iteration
    // limit rather than ever mislabeling it infeasible.
    if (!iterate(/*allow_artificial=*/true) || unbounded_)
      return LpStatus::IterationLimit;
    if (-cost_[width_] > kFeasTol) return LpStatus::Infeasible;
    pivot_out_artificials();
    return LpStatus::Optimal;
  }

  /// Phase 2: minimize the real objective (given per structural column).
  /// Returns false on iteration exhaustion, sets `unbounded_` as found.
  [[nodiscard]] bool optimize(const std::vector<double>& objective) {
    std::fill(cost_.begin(), cost_.end(), 0.0);
    for (std::size_t j = 0; j < objective.size() && j < structural_; ++j)
      cost_[j] = objective[j];
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      const double c = basis_[i] < structural_ && basis_[i] < objective.size()
                           ? objective[basis_[i]]
                           : 0.0;
      if (c != 0.0) {
        for (std::size_t j = 0; j <= width_; ++j)
          cost_[j] -= c * rows_[i][j];
      }
    }
    return iterate(/*allow_artificial=*/false);
  }

  [[nodiscard]] bool unbounded() const { return unbounded_; }

  [[nodiscard]] std::vector<double> solution() const {
    std::vector<double> x(structural_, 0.0);
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      if (basis_[i] < structural_)
        x[basis_[i]] = std::max(0.0, rows_[i][width_]);
    }
    return x;
  }

 private:
  static RowSense flipped(RowSense s) {
    if (s == RowSense::Le) return RowSense::Ge;
    if (s == RowSense::Ge) return RowSense::Le;
    return RowSense::Eq;
  }

  /// Core pivot loop shared by both phases. Dantzig pricing for speed,
  /// switching to Bland's rule (smallest improving index, smallest leaving
  /// basis index) once the iteration count suggests degeneracy, which makes
  /// termination certain. Returns false only on iteration exhaustion.
  bool iterate(bool allow_artificial) {
    const std::size_t limit =
        allow_artificial ? width_ : first_artificial_;
    std::size_t degenerate_guard = 4 * (rows_.size() + width_) + 64;
    bool bland = false;
    while (true) {
      if (iterations_left_ == 0) return false;
      --iterations_left_;
      if (degenerate_guard == 0) bland = true;
      if (degenerate_guard > 0) --degenerate_guard;

      // Entering column: negative reduced cost improves a minimization.
      std::size_t enter = width_;
      double best = -kCostTol;
      for (std::size_t j = 0; j < limit; ++j) {
        if (cost_[j] < best) {
          enter = j;
          best = cost_[j];
          if (bland) break;
        }
      }
      if (enter == width_) return true;  // optimal

      // Ratio test: tightest row with a positive pivot element; ties go to
      // the smallest basis index (Bland's leaving rule, always applied —
      // it is cheap and only strengthens anti-cycling).
      std::size_t leave = rows_.size();
      double best_ratio = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < rows_.size(); ++i) {
        const double a = rows_[i][enter];
        if (a <= kPivotTol) continue;
        const double ratio = rows_[i][width_] / a;
        if (ratio < best_ratio - kPivotTol ||
            (ratio < best_ratio + kPivotTol && leave < rows_.size() &&
             basis_[i] < basis_[leave])) {
          leave = i;
          best_ratio = ratio;
        }
      }
      if (leave == rows_.size()) {
        unbounded_ = true;
        return true;
      }
      pivot(leave, enter);
    }
  }

  void pivot(std::size_t row, std::size_t col) {
    std::vector<double>& pr = rows_[row];
    const double inv = 1.0 / pr[col];
    for (double& v : pr) v *= inv;
    pr[col] = 1.0;  // kill roundoff on the pivot element itself
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      if (i == row) continue;
      eliminate(rows_[i], pr, col);
    }
    eliminate(cost_, pr, col);
    basis_[row] = col;
  }

  static void eliminate(std::vector<double>& target,
                        const std::vector<double>& pivot_row,
                        std::size_t col) {
    const double factor = target[col];
    if (factor == 0.0) return;
    for (std::size_t j = 0; j < target.size(); ++j)
      target[j] -= factor * pivot_row[j];
    target[col] = 0.0;
  }

  /// After phase 1, swap any artificial still basic (at zero level) for a
  /// structural/slack column so phase 2 never re-grows the residual. A row
  /// with no eligible pivot is redundant and simply keeps its zero-valued
  /// artificial: harmless, since artificials are barred from entering later.
  void pivot_out_artificials() {
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      if (basis_[i] < first_artificial_) continue;
      for (std::size_t j = 0; j < first_artificial_; ++j) {
        if (std::abs(rows_[i][j]) > kPivotTol) {
          pivot(i, j);
          break;
        }
      }
    }
  }

  std::size_t structural_ = 0;
  std::size_t first_artificial_ = 0;
  std::size_t width_ = 0;
  std::vector<std::vector<double>> rows_;
  std::vector<std::size_t> basis_;
  std::vector<double> cost_;
  std::size_t iterations_left_ = 0;
  bool unbounded_ = false;
};

}  // namespace

const char* to_string(LpStatus s) noexcept {
  switch (s) {
    case LpStatus::Optimal: return "optimal";
    case LpStatus::Infeasible: return "infeasible";
    case LpStatus::Unbounded: return "unbounded";
    case LpStatus::IterationLimit: return "iteration-limit";
  }
  return "?";
}

LpSolution solve_lp(const LinearProgram& lp, std::size_t max_iterations) {
  if (max_iterations == 0)
    max_iterations = 2000 + 40 * (lp.rows.size() + lp.columns);

  LpSolution out;
  Tableau tableau(lp, max_iterations);
  const LpStatus phase1 = tableau.make_feasible();
  if (phase1 != LpStatus::Optimal) {
    out.status = phase1;
    return out;
  }
  if (!tableau.optimize(lp.objective)) {
    out.status = LpStatus::IterationLimit;
    return out;
  }
  if (tableau.unbounded()) {
    out.status = LpStatus::Unbounded;
    return out;
  }
  out.status = LpStatus::Optimal;
  out.values = tableau.solution();
  double obj = 0.0;
  for (std::size_t j = 0; j < lp.objective.size() && j < out.values.size();
       ++j)
    obj += lp.objective[j] * out.values[j];
  out.objective = obj;
  return out;
}

}  // namespace pipeopt::exact::mip
