#pragma once

/// \file exact_solvers.hpp
/// Optimal solvers built on exhaustive enumeration, covering every objective
/// and constraint combination of the paper (usable on any platform class and
/// both communication models — at small scale).
///
/// These are (a) the oracle the polynomial algorithms are verified against,
/// (b) the optimal baseline the heuristics are gapped against, and (c) the
/// solver of last resort for the NP-hard cells of Tables 1 and 2.

#include <optional>

#include "core/mapping.hpp"
#include "core/objectives.hpp"
#include "core/problem.hpp"
#include "exact/enumeration.hpp"

namespace pipeopt::exact {

/// Criterion to minimize.
enum class Objective {
  Period,   ///< max_a W_a·T_a
  Latency,  ///< max_a W_a·L_a
  Energy    ///< Σ enrolled processor energy
};

/// Exact optimum.
struct ExactResult {
  double value = 0.0;
  core::Mapping mapping;
  EnumerationStats stats;
};

/// Minimizes `objective` over all mappings of the given kind subject to
/// `constraints` (any part may be absent). Returns std::nullopt when no
/// feasible mapping exists (including p < N for one-to-one).
/// \throws SearchLimitExceeded when the space exceeds options.node_limit.
[[nodiscard]] std::optional<ExactResult> exact_minimize(
    const core::Problem& problem, const EnumerationOptions& options,
    Objective objective, const core::ConstraintSet& constraints = {});

/// Convenience wrappers for the mono-criterion problems (processors at
/// maximum speed, i.e. modes not enumerated unless requested).
[[nodiscard]] std::optional<ExactResult> exact_min_period(
    const core::Problem& problem, MappingKind kind,
    std::uint64_t node_limit = 100'000'000);
[[nodiscard]] std::optional<ExactResult> exact_min_latency(
    const core::Problem& problem, MappingKind kind,
    std::uint64_t node_limit = 100'000'000);

/// Minimum energy under per-application period bounds (modes enumerated) —
/// the exact counterpart of Theorems 18/19/21 on any platform.
[[nodiscard]] std::optional<ExactResult> exact_min_energy_under_period(
    const core::Problem& problem, MappingKind kind,
    const core::Thresholds& period_bounds,
    std::uint64_t node_limit = 100'000'000);

/// Tri-criteria feasibility/optimum: minimum energy under period and latency
/// bounds (modes enumerated) — the exact counterpart of Theorems 23-27.
[[nodiscard]] std::optional<ExactResult> exact_min_energy_tricriteria(
    const core::Problem& problem, MappingKind kind,
    const core::Thresholds& period_bounds, const core::Thresholds& latency_bounds,
    std::uint64_t node_limit = 100'000'000);

}  // namespace pipeopt::exact
