#pragma once

/// \file enumeration.hpp
/// Exhaustive enumeration of one-to-one and interval mappings.
///
/// This is the library's optimality oracle: every NP-hard cell of Tables 1
/// and 2 can still be solved exactly at small scale, which is how the
/// polynomial algorithms are property-tested and how heuristic gaps are
/// measured. The search walks, per application, every composition of the
/// stage chain into intervals, every injective placement onto unused
/// processors, and (optionally) every speed mode.
///
/// The search-space growth is itself an experiment (bench_exact_scaling):
/// compositions × falling-factorial placements × mode choices is the
/// exponential wall the NP-completeness theorems predict.

#include <cstdint>
#include <functional>
#include <span>
#include <stdexcept>

#include "core/mapping.hpp"
#include "core/problem.hpp"
#include "util/cancel.hpp"

namespace pipeopt::exact {

/// Mapping family to enumerate.
enum class MappingKind {
  OneToOne,  ///< every interval is a single stage
  Interval   ///< arbitrary consecutive intervals
};

/// Enumeration controls.
struct EnumerationOptions {
  MappingKind kind = MappingKind::Interval;
  /// Enumerate every speed mode per enrolled processor; when false the
  /// maximum mode is used (the §4 normalization for performance-only
  /// problems).
  bool enumerate_modes = false;
  /// Upper bound on recursion nodes; exceeded -> SearchLimitExceeded.
  std::uint64_t node_limit = 100'000'000;
  /// Cooperative cancellation, polled every `kCancelCheckStride` nodes;
  /// fired -> SearchCancelled. Default token never cancels.
  util::CancelToken cancel;
};

/// How many recursion nodes the exact engines visit between cancellation
/// polls — the "budget check interval" a cancel is honored within.
inline constexpr std::uint64_t kCancelCheckStride = 1024;

/// Thrown when the enumeration exceeds its node budget.
class SearchLimitExceeded : public std::runtime_error {
 public:
  SearchLimitExceeded()
      : std::runtime_error("pipeopt::exact enumeration node limit exceeded") {}

 protected:
  explicit SearchLimitExceeded(const char* what) : std::runtime_error(what) {}
};

/// Thrown when the caller's CancelToken fires mid-search. Derives from
/// SearchLimitExceeded so call sites that only know about bounded search
/// keep treating a cancelled run as one that hit its budget.
class SearchCancelled : public SearchLimitExceeded {
 public:
  SearchCancelled()
      : SearchLimitExceeded("pipeopt::exact search cancelled") {}
};

/// Statistics of one enumeration run.
struct EnumerationStats {
  std::uint64_t nodes = 0;     ///< recursion nodes visited
  std::uint64_t complete = 0;  ///< complete mappings produced
};

/// Callback receives each complete mapping as a span of intervals ordered by
/// (application, first stage). The span is only valid during the call.
using MappingVisitor =
    std::function<void(std::span<const core::IntervalAssignment>)>;

/// Enumerates all mappings of the problem per the options.
/// \throws SearchLimitExceeded past options.node_limit.
EnumerationStats enumerate_mappings(const core::Problem& problem,
                                    const EnumerationOptions& options,
                                    const MappingVisitor& visit);

/// Closed-form size of the search space (number of complete mappings) —
/// used by the scaling bench to report the exponential growth curve without
/// walking it. Saturates at UINT64_MAX.
[[nodiscard]] std::uint64_t mapping_space_size(const core::Problem& problem,
                                               const EnumerationOptions& options);

}  // namespace pipeopt::exact
