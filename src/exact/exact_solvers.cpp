#include "exact/exact_solvers.hpp"

#include <vector>

#include "core/eval_batch.hpp"
#include "core/evaluation.hpp"
#include "util/numeric.hpp"

namespace pipeopt::exact {
namespace {

using core::ConstraintSet;
using core::Mapping;
using core::Metrics;
using core::Problem;

double objective_value(Objective objective, const Metrics& metrics) {
  switch (objective) {
    case Objective::Period: return metrics.max_weighted_period;
    case Objective::Latency: return metrics.max_weighted_latency;
    case Objective::Energy: return metrics.energy;
  }
  return util::kInfinity;
}

}  // namespace

std::optional<ExactResult> exact_minimize(const Problem& problem,
                                          const EnumerationOptions& options,
                                          Objective objective,
                                          const ConstraintSet& constraints) {
  std::optional<ExactResult> best;
  // One bound workspace for the whole enumeration. Leaves are evaluated
  // straight off the enumerator's span — already (app, first)-ordered, so
  // the result is bit-identical to constructing the Mapping first — and a
  // Mapping is only materialized for a new incumbent.
  core::BatchEvaluator evaluator(problem);
  EnumerationStats stats = enumerate_mappings(
      problem, options,
      [&](std::span<const core::IntervalAssignment> intervals) {
        const Metrics& metrics = evaluator.evaluate(intervals);
        if (!constraints.satisfied_by(metrics)) return;
        const double value = objective_value(objective, metrics);
        if (!best || value < best->value) {
          best = ExactResult{
              value,
              Mapping(std::vector<core::IntervalAssignment>(intervals.begin(),
                                                            intervals.end())),
              {}};
        }
      });
  if (best) best->stats = stats;
  return best;
}

std::optional<ExactResult> exact_min_period(const Problem& problem,
                                            MappingKind kind,
                                            std::uint64_t node_limit) {
  EnumerationOptions options;
  options.kind = kind;
  options.enumerate_modes = false;
  options.node_limit = node_limit;
  return exact_minimize(problem, options, Objective::Period);
}

std::optional<ExactResult> exact_min_latency(const Problem& problem,
                                             MappingKind kind,
                                             std::uint64_t node_limit) {
  EnumerationOptions options;
  options.kind = kind;
  options.enumerate_modes = false;
  options.node_limit = node_limit;
  return exact_minimize(problem, options, Objective::Latency);
}

std::optional<ExactResult> exact_min_energy_under_period(
    const Problem& problem, MappingKind kind,
    const core::Thresholds& period_bounds, std::uint64_t node_limit) {
  EnumerationOptions options;
  options.kind = kind;
  options.enumerate_modes = true;
  options.node_limit = node_limit;
  ConstraintSet constraints;
  constraints.period = period_bounds;
  return exact_minimize(problem, options, Objective::Energy, constraints);
}

std::optional<ExactResult> exact_min_energy_tricriteria(
    const Problem& problem, MappingKind kind,
    const core::Thresholds& period_bounds, const core::Thresholds& latency_bounds,
    std::uint64_t node_limit) {
  EnumerationOptions options;
  options.kind = kind;
  options.enumerate_modes = true;
  options.node_limit = node_limit;
  ConstraintSet constraints;
  constraints.period = period_bounds;
  constraints.latency = latency_bounds;
  return exact_minimize(problem, options, Objective::Energy, constraints);
}

}  // namespace pipeopt::exact
