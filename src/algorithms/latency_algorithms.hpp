#pragma once

/// \file latency_algorithms.hpp
/// Polynomial latency-minimization algorithms.
///
/// * Theorem 8 — one-to-one latency on fully homogeneous platforms: all
///   one-to-one mappings are equivalent; build any and evaluate.
/// * Theorem 12 — interval latency on communication-homogeneous platforms:
///   a whole application on one processor dominates any split (splitting
///   adds communication and cannot speed up computation beyond the fastest
///   processor), so keep the A fastest processors and assign applications
///   one-to-one; the optimal value lies in the candidate set
///   L = { W_a · (δ⁰/b + Σw/s_u + δⁿ/b) } and the greedy of Algorithm 1
///   decides feasibility of each threshold.

#include <optional>

#include "algorithms/one_to_one_period.hpp"  // for Solution
#include "core/problem.hpp"

namespace pipeopt::algorithms {

/// Theorem 8: one-to-one latency minimum on fully homogeneous platforms.
/// Returns std::nullopt when p < N.
/// \throws std::invalid_argument unless the platform is fully homogeneous.
[[nodiscard]] std::optional<Solution> one_to_one_min_latency_fully_hom(
    const core::Problem& problem);

/// Theorem 12: interval latency minimum on communication-homogeneous
/// platforms (one processor per application). Returns std::nullopt when
/// p < A. \throws std::invalid_argument on heterogeneous links (NP-hard,
/// Theorem 13).
[[nodiscard]] std::optional<Solution> interval_min_latency(
    const core::Problem& problem);

/// Feasibility of max_a W_a·L_a <= threshold with one processor per
/// application (the Theorem 12 regime).
[[nodiscard]] std::optional<core::Mapping> interval_latency_feasible(
    const core::Problem& problem, double threshold);

/// Solo optimum: latency of application `app` alone on the platform's
/// fastest processor (used for stretch weights).
[[nodiscard]] double solo_interval_latency(const core::Problem& problem,
                                           std::size_t app);

}  // namespace pipeopt::algorithms
