#include "algorithms/tricriteria_unimodal.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "algorithms/bicriteria_period_latency.hpp"
#include "algorithms/latency_algorithms.hpp"
#include "algorithms/processor_allocation.hpp"
#include "core/evaluation.hpp"
#include "util/numeric.hpp"

namespace pipeopt::algorithms {
namespace {

using core::CommModel;
using core::ConstraintSet;
using core::Mapping;
using core::PlatformClass;
using core::Problem;
using core::Thresholds;

void require_uni_modal_fully_hom(const Problem& problem) {
  if (problem.platform().classify() != PlatformClass::FullyHomogeneous ||
      !problem.platform().is_uni_modal()) {
    throw std::invalid_argument(
        "tri-criteria: polynomial only on fully homogeneous uni-modal "
        "platforms (Theorems 23-25); NP-hard with multiple modes "
        "(Theorems 26-27)");
  }
}

double per_processor_energy(const Problem& problem) {
  return problem.platform().processor_energy(0, 0);
}

Mapping splits_to_mapping(const std::vector<std::vector<std::size_t>>& splits) {
  std::vector<core::IntervalAssignment> intervals;
  std::size_t next_proc = 0;
  for (std::size_t a = 0; a < splits.size(); ++a) {
    std::size_t first = 0;
    for (std::size_t last : splits[a]) {
      intervals.push_back({a, first, last, next_proc++, 0});  // uni-modal: mode 0
      first = last + 1;
    }
  }
  return Mapping(std::move(intervals));
}

}  // namespace

std::size_t affordable_processors(const Problem& problem, double energy_budget) {
  require_uni_modal_fully_hom(problem);
  const double unit = per_processor_energy(problem);
  if (!util::approx_ge(energy_budget, unit)) return 0;
  // Relative nudge so a budget of exactly k·unit affords k processors even
  // after floating-point division noise.
  const auto k = static_cast<std::size_t>(
      std::floor(energy_budget / unit * (1.0 + util::kRelTol) + util::kAbsTol));
  return std::min(k, problem.platform().processor_count());
}

std::optional<Solution> one_to_one_tricriteria_feasible(
    const Problem& problem, const ConstraintSet& constraints) {
  require_uni_modal_fully_hom(problem);
  if (!problem.one_to_one_applicable()) return std::nullopt;

  std::vector<core::IntervalAssignment> intervals;
  std::size_t proc = 0;
  for (std::size_t a = 0; a < problem.application_count(); ++a) {
    for (std::size_t k = 0; k < problem.application(a).stage_count(); ++k) {
      intervals.push_back({a, k, k, proc++, 0});
    }
  }
  Solution solution;
  solution.mapping = Mapping(std::move(intervals));
  const core::Metrics metrics = core::evaluate(problem, solution.mapping);
  if (!constraints.satisfied_by(metrics)) return std::nullopt;
  solution.value = metrics.energy;
  return solution;
}

std::optional<Solution> interval_min_period_tricriteria(
    const Problem& problem, const Thresholds& latency_bounds,
    double energy_budget) {
  require_uni_modal_fully_hom(problem);
  const std::size_t k_max = affordable_processors(problem, energy_budget);
  if (k_max < problem.application_count()) return std::nullopt;

  const auto& platform = problem.platform();
  const double speed = platform.processor(0).max_speed();
  const double bw = platform.uniform_bandwidth();

  const auto value = [&](std::size_t a, std::size_t k) {
    return problem.application(a).weight() *
           min_period_under_latency(problem.application(a), speed, bw,
                                    problem.comm_model(), k,
                                    latency_bounds.bound(a));
  };
  const auto allocation =
      allocate_processors(problem.application_count(), k_max, value);
  if (!allocation) return std::nullopt;

  std::vector<std::vector<std::size_t>> splits;
  for (std::size_t a = 0; a < problem.application_count(); ++a) {
    const std::size_t k = allocation->count[a];
    const double period = min_period_under_latency(
        problem.application(a), speed, bw, problem.comm_model(), k,
        latency_bounds.bound(a));
    const LatencyUnderPeriodDp dp(problem.application(a), speed, bw,
                                  problem.comm_model(), k, period);
    splits.push_back(dp.optimal_splits(k));
  }
  Solution solution;
  solution.value = allocation->objective;
  solution.mapping = splits_to_mapping(splits);
  return solution;
}

std::optional<Solution> interval_min_latency_tricriteria(
    const Problem& problem, const Thresholds& period_bounds,
    double energy_budget) {
  require_uni_modal_fully_hom(problem);
  const std::size_t k_max = affordable_processors(problem, energy_budget);
  if (k_max < problem.application_count()) return std::nullopt;

  const auto& platform = problem.platform();
  const double speed = platform.processor(0).max_speed();
  const double bw = platform.uniform_bandwidth();

  std::vector<LatencyUnderPeriodDp> dps;
  dps.reserve(problem.application_count());
  for (std::size_t a = 0; a < problem.application_count(); ++a) {
    dps.emplace_back(problem.application(a), speed, bw, problem.comm_model(),
                     k_max, period_bounds.bound(a));
  }
  const auto value = [&](std::size_t a, std::size_t k) {
    return problem.application(a).weight() * dps[a].min_latency_by_count(k);
  };
  const auto allocation =
      allocate_processors(problem.application_count(), k_max, value);
  if (!allocation) return std::nullopt;

  std::vector<std::vector<std::size_t>> splits;
  for (std::size_t a = 0; a < problem.application_count(); ++a) {
    splits.push_back(dps[a].optimal_splits(allocation->count[a]));
  }
  Solution solution;
  solution.value = allocation->objective;
  solution.mapping = splits_to_mapping(splits);
  return solution;
}

std::optional<Solution> interval_min_energy_tricriteria(
    const Problem& problem, const Thresholds& period_bounds,
    const Thresholds& latency_bounds) {
  require_uni_modal_fully_hom(problem);
  const auto& platform = problem.platform();
  const double speed = platform.processor(0).max_speed();
  const double bw = platform.uniform_bandwidth();
  const std::size_t p = platform.processor_count();

  // Per application: fewest processors meeting both bounds; the latency
  // under the period bound is non-increasing in k, so scan k upward.
  std::vector<LatencyUnderPeriodDp> dps;
  dps.reserve(problem.application_count());
  for (std::size_t a = 0; a < problem.application_count(); ++a) {
    dps.emplace_back(problem.application(a), speed, bw, problem.comm_model(), p,
                     period_bounds.bound(a));
  }
  const auto value = [&](std::size_t a, std::size_t k) {
    return dps[a].min_latency_by_count(k);
  };
  std::vector<double> bounds;
  bounds.reserve(problem.application_count());
  for (std::size_t a = 0; a < problem.application_count(); ++a) {
    bounds.push_back(latency_bounds.bound(a));
  }
  const auto allocation = minimal_counts_for_bounds(
      problem.application_count(), p, value, bounds);
  if (!allocation) return std::nullopt;

  std::vector<std::vector<std::size_t>> splits;
  std::size_t total = 0;
  for (std::size_t a = 0; a < problem.application_count(); ++a) {
    splits.push_back(dps[a].optimal_splits(allocation->count[a]));
    total += splits.back().size();
  }
  Solution solution;
  solution.value = static_cast<double>(total) * per_processor_energy(problem);
  solution.mapping = splits_to_mapping(splits);
  return solution;
}

}  // namespace pipeopt::algorithms
