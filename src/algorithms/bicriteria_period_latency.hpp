#pragma once

/// \file bicriteria_period_latency.hpp
/// Theorems 14–16: period/latency bi-criteria optimization on fully
/// homogeneous platforms.
///
/// Single application (Theorem 15): the dynamic program
///   (L,T)(i,q) = min_{j<i, cost(j+1..i) <= T_bound}
///                ( L(j,q-1) + Σw/s + δ^i/b )
/// computes the minimum latency of an interval mapping whose every interval
/// cycle-time respects the period bound, for every processor count at once.
/// The converse (minimum period under a latency bound) binary-searches the
/// finite candidate set of interval cycle-times, re-running the DP.
///
/// Several applications (Theorem 16): Algorithm 2 over the per-application
/// DP values, with per-application thresholds.

#include <cstddef>
#include <optional>
#include <vector>

#include "algorithms/one_to_one_period.hpp"  // for Solution
#include "core/application.hpp"
#include "core/objectives.hpp"
#include "core/problem.hpp"

namespace pipeopt::algorithms {

/// The (L,T)(i,q) dynamic program for one application on identical
/// processors under a per-interval period bound.
class LatencyUnderPeriodDp {
 public:
  LatencyUnderPeriodDp(const core::Application& app, double speed,
                       double bandwidth, core::CommModel comm,
                       std::size_t max_procs, double period_bound);

  /// Minimum (unweighted) latency with at most q processors; +inf when the
  /// period bound cannot be met with q intervals.
  [[nodiscard]] double min_latency_by_count(std::size_t q) const;

  /// Inclusive last stages of an optimal partition (throws when infeasible).
  [[nodiscard]] std::vector<std::size_t> optimal_splits(std::size_t q) const;

  [[nodiscard]] std::size_t stage_count() const noexcept { return n_; }

 private:
  [[nodiscard]] double interval_cycle(std::size_t first, std::size_t last) const;
  [[nodiscard]] std::size_t clamp_q(std::size_t q) const noexcept;

  std::vector<double> compute_prefix_;
  std::vector<double> boundary_;
  double speed_;
  double bandwidth_;
  core::CommModel comm_;
  double period_bound_;
  std::size_t n_;
  std::size_t max_q_;
  std::vector<std::vector<double>> latency_;     // [q][i]
  std::vector<std::vector<std::size_t>> choice_; // [q][i]
};

/// Candidate period values for one application on identical processors
/// (every achievable interval cycle-time; Theorem 15's set T).
[[nodiscard]] std::vector<double> period_candidates(const core::Application& app,
                                                    double speed, double bandwidth,
                                                    core::CommModel comm);

/// Minimum period achievable by application `app` with at most q processors
/// subject to L_a <= latency_bound (unweighted); +inf when infeasible.
[[nodiscard]] double min_period_under_latency(const core::Application& app,
                                              double speed, double bandwidth,
                                              core::CommModel comm, std::size_t q,
                                              double latency_bound);

/// Theorem 16 (a): minimize max_a W_a·L_a under per-application period
/// bounds, interval mapping, fully homogeneous platform.
[[nodiscard]] std::optional<Solution> multi_min_latency_under_period(
    const core::Problem& problem, const core::Thresholds& period_bounds);

/// Theorem 16 (b): minimize max_a W_a·T_a under per-application latency
/// bounds.
[[nodiscard]] std::optional<Solution> multi_min_period_under_latency(
    const core::Problem& problem, const core::Thresholds& latency_bounds);

}  // namespace pipeopt::algorithms
