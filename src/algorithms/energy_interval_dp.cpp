#include "algorithms/energy_interval_dp.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/numeric.hpp"

namespace pipeopt::algorithms {
namespace {

using core::CommModel;
using core::Mapping;
using core::PlatformClass;
using core::Problem;
using core::Thresholds;

void require_fully_homogeneous(const Problem& problem) {
  if (problem.platform().classify() != PlatformClass::FullyHomogeneous) {
    throw std::invalid_argument(
        "interval energy minimization: polynomial only on fully homogeneous "
        "platforms (Theorems 18/21); NP-hard otherwise (Theorem 22)");
  }
}

}  // namespace

EnergyIntervalDp::EnergyIntervalDp(const Problem& problem, std::size_t app_idx,
                                   std::size_t max_procs, double period_bound)
    : bandwidth_(problem.platform().uniform_bandwidth()),
      comm_(problem.comm_model()),
      period_bound_(period_bound),
      n_(problem.application(app_idx).stage_count()),
      max_k_(std::min(max_procs, problem.application(app_idx).stage_count())) {
  require_fully_homogeneous(problem);
  if (max_procs == 0) {
    throw std::invalid_argument("EnergyIntervalDp: needs >= 1 processor");
  }
  const auto& app = problem.application(app_idx);
  const auto& proc = problem.platform().processor(0);
  speeds_ = proc.speeds();
  mode_energy_.reserve(speeds_.size());
  for (std::size_t m = 0; m < speeds_.size(); ++m) {
    mode_energy_.push_back(problem.platform().processor_energy(0, m));
  }

  compute_prefix_.assign(n_ + 1, 0.0);
  boundary_.assign(n_ + 1, 0.0);
  for (std::size_t k = 0; k < n_; ++k) {
    compute_prefix_[k + 1] = compute_prefix_[k] + app.compute(k);
  }
  for (std::size_t i = 0; i <= n_; ++i) boundary_[i] = app.boundary_size(i);

  // energy_[k][i]: stages 1..i in exactly k+1 intervals.
  energy_.assign(max_k_, std::vector<double>(n_ + 1, util::kInfinity));
  choice_.assign(max_k_, std::vector<std::size_t>(n_ + 1, 0));

  for (std::size_t k = 0; k < max_k_; ++k) {
    for (std::size_t i = 1; i <= n_; ++i) {
      if (k == 0) {
        energy_[0][i] = interval_energy(0, i - 1).first;
        choice_[0][i] = 0;
        continue;
      }
      double best = util::kInfinity;
      std::size_t best_j = 0;
      for (std::size_t j = 1; j < i; ++j) {  // k+1 intervals need j >= k
        if (!std::isfinite(energy_[k - 1][j])) continue;
        const double tail = interval_energy(j, i - 1).first;
        const double value = energy_[k - 1][j] + tail;
        if (value < best) {
          best = value;
          best_j = j;
        }
      }
      energy_[k][i] = best;
      choice_[k][i] = best_j;
    }
  }
}

std::pair<double, std::size_t> EnergyIntervalDp::interval_energy(
    std::size_t first, std::size_t last) const {
  const double in = boundary_[first] / bandwidth_;
  const double out = boundary_[last + 1] / bandwidth_;
  const double work = compute_prefix_[last + 1] - compute_prefix_[first];
  for (std::size_t m = 0; m < speeds_.size(); ++m) {
    const double comp = work / speeds_[m];
    const double cycle = comm_ == CommModel::Overlap
                             ? std::max({in, comp, out})
                             : in + comp + out;
    if (util::approx_le(cycle, period_bound_)) return {mode_energy_[m], m};
  }
  return {util::kInfinity, 0};
}

double EnergyIntervalDp::min_energy_exact(std::size_t k) const {
  if (k == 0 || k > max_k_) return util::kInfinity;
  return energy_[k - 1][n_];
}

double EnergyIntervalDp::min_energy_at_most(std::size_t k) const {
  double best = util::kInfinity;
  for (std::size_t q = 1; q <= std::min(k, max_k_); ++q) {
    best = std::min(best, energy_[q - 1][n_]);
  }
  return best;
}

std::optional<EnergyIntervalDp::Plan> EnergyIntervalDp::optimal_plan(
    std::size_t k) const {
  // Pick the best exact count <= k.
  std::size_t best_q = 0;
  double best = util::kInfinity;
  for (std::size_t q = 1; q <= std::min(k, max_k_); ++q) {
    if (energy_[q - 1][n_] < best) {
      best = energy_[q - 1][n_];
      best_q = q;
    }
  }
  if (best_q == 0) return std::nullopt;

  Plan plan;
  std::size_t i = n_;
  std::size_t level = best_q - 1;
  std::vector<std::pair<std::size_t, std::size_t>> ranges;  // (first, last)
  while (i > 0) {
    const std::size_t j = choice_[level][i];
    ranges.emplace_back(j, i - 1);
    i = j;
    level = (level == 0) ? 0 : level - 1;
  }
  std::reverse(ranges.begin(), ranges.end());
  for (const auto& [first, last] : ranges) {
    plan.ends.push_back(last);
    plan.modes.push_back(interval_energy(first, last).second);
  }
  return plan;
}

std::optional<Solution> interval_min_energy_under_period(
    const Problem& problem, const Thresholds& period_bounds) {
  require_fully_homogeneous(problem);
  const std::size_t A = problem.application_count();
  const std::size_t p = problem.platform().processor_count();

  std::vector<EnergyIntervalDp> dps;
  dps.reserve(A);
  for (std::size_t a = 0; a < A; ++a) {
    dps.emplace_back(problem, a, p, period_bounds.bound(a));
  }

  // Knapsack over the processor budget: G[a][k] = min energy of apps 0..a
  // using at most k processors in total.
  constexpr double kInf = util::kInfinity;
  std::vector<std::vector<double>> g(A, std::vector<double>(p + 1, kInf));
  std::vector<std::vector<std::size_t>> pick(A, std::vector<std::size_t>(p + 1, 0));
  for (std::size_t k = 1; k <= p; ++k) {
    g[0][k] = dps[0].min_energy_at_most(k);
    pick[0][k] = k;
  }
  for (std::size_t a = 1; a < A; ++a) {
    for (std::size_t k = a + 1; k <= p; ++k) {
      for (std::size_t q = 1; q + a <= k; ++q) {
        const double mine = dps[a].min_energy_at_most(q);
        const double rest = g[a - 1][k - q];
        if (!std::isfinite(mine) || !std::isfinite(rest)) continue;
        if (mine + rest < g[a][k]) {
          g[a][k] = mine + rest;
          pick[a][k] = q;
        }
      }
    }
  }
  if (!std::isfinite(g[A - 1][p])) return std::nullopt;

  // Reconstruct per-application budgets, then each application's plan.
  std::vector<std::size_t> budget(A, 0);
  std::size_t k = p;
  for (std::size_t a = A; a-- > 0;) {
    budget[a] = pick[a][k];
    k -= (a == 0) ? 0 : budget[a];
  }

  std::vector<core::IntervalAssignment> intervals;
  std::size_t next_proc = 0;
  for (std::size_t a = 0; a < A; ++a) {
    const auto plan = dps[a].optimal_plan(budget[a]);
    if (!plan) return std::nullopt;  // unreachable given finite g
    std::size_t first = 0;
    for (std::size_t j = 0; j < plan->ends.size(); ++j) {
      intervals.push_back({a, first, plan->ends[j], next_proc++, plan->modes[j]});
      first = plan->ends[j] + 1;
    }
  }
  Solution solution;
  solution.value = g[A - 1][p];
  solution.mapping = Mapping(std::move(intervals));
  return solution;
}

}  // namespace pipeopt::algorithms
