#include "algorithms/energy_matching.hpp"

#include <stdexcept>

#include "core/evaluation.hpp"
#include "solvers/hungarian.hpp"
#include "util/numeric.hpp"

namespace pipeopt::algorithms {

std::optional<Solution> one_to_one_min_energy_under_period(
    const core::Problem& problem, const core::Thresholds& period_bounds) {
  const auto& platform = problem.platform();
  if (!platform.has_uniform_bandwidth()) {
    throw std::invalid_argument(
        "one-to-one energy minimization: NP-hard on fully heterogeneous "
        "platforms (Theorem 20); this algorithm requires uniform links");
  }
  if (!problem.one_to_one_applicable()) return std::nullopt;

  const std::size_t n = problem.total_stages();
  const std::size_t p = platform.processor_count();

  // cost[stage][proc] = energy of the slowest feasible mode, else +inf.
  // Also remember the chosen mode for mapping reconstruction.
  std::vector<std::vector<double>> cost(n, std::vector<double>(p, util::kInfinity));
  std::vector<std::vector<std::size_t>> mode_of(n, std::vector<std::size_t>(p, 0));

  std::size_t row = 0;
  for (std::size_t a = 0; a < problem.application_count(); ++a) {
    const auto& app = problem.application(a);
    for (std::size_t k = 0; k < app.stage_count(); ++k, ++row) {
      for (std::size_t u = 0; u < p; ++u) {
        const auto& proc = platform.processor(u);
        // Modes ascend in speed, hence in energy: the first feasible mode is
        // the cheapest (linear scan keeps tolerance semantics identical to
        // the evaluation path).
        for (std::size_t m = 0; m < proc.mode_count(); ++m) {
          const double cycle =
              core::one_to_one_cycle_time(problem, a, k, u, proc.speed(m));
          if (util::approx_le(cycle, period_bounds.bound(a))) {
            cost[row][u] = platform.processor_energy(u, m);
            mode_of[row][u] = m;
            break;
          }
        }
      }
    }
  }

  const auto matching = solvers::solve_assignment(cost);
  if (!matching) return std::nullopt;

  std::vector<core::IntervalAssignment> intervals;
  intervals.reserve(n);
  row = 0;
  for (std::size_t a = 0; a < problem.application_count(); ++a) {
    for (std::size_t k = 0; k < problem.application(a).stage_count(); ++k, ++row) {
      const std::size_t u = matching->column_of[row];
      intervals.push_back({a, k, k, u, mode_of[row][u]});
    }
  }
  Solution solution;
  solution.value = matching->total_cost;
  solution.mapping = core::Mapping(std::move(intervals));
  return solution;
}

}  // namespace pipeopt::algorithms
