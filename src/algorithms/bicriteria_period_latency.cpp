#include "algorithms/bicriteria_period_latency.hpp"

#include <algorithm>
#include <stdexcept>

#include "algorithms/processor_allocation.hpp"
#include "core/evaluation.hpp"
#include "solvers/search.hpp"
#include "util/numeric.hpp"

namespace pipeopt::algorithms {
namespace {

using core::Application;
using core::CommModel;
using core::Mapping;
using core::PlatformClass;
using core::Problem;
using core::Thresholds;

void require_fully_homogeneous(const Problem& problem, const char* what) {
  if (problem.platform().classify() != PlatformClass::FullyHomogeneous) {
    throw std::invalid_argument(std::string(what) +
                                ": polynomial only on fully homogeneous "
                                "platforms (Theorem 17 otherwise)");
  }
}

Mapping splits_to_mapping(const Problem& problem,
                          const std::vector<std::vector<std::size_t>>& splits) {
  std::vector<core::IntervalAssignment> intervals;
  std::size_t next_proc = 0;
  const std::size_t max_mode = problem.platform().processor(0).max_mode();
  for (std::size_t a = 0; a < splits.size(); ++a) {
    std::size_t first = 0;
    for (std::size_t last : splits[a]) {
      intervals.push_back({a, first, last, next_proc++, max_mode});
      first = last + 1;
    }
  }
  return Mapping(std::move(intervals));
}

}  // namespace

LatencyUnderPeriodDp::LatencyUnderPeriodDp(const Application& app, double speed,
                                           double bandwidth, CommModel comm,
                                           std::size_t max_procs,
                                           double period_bound)
    : speed_(speed),
      bandwidth_(bandwidth),
      comm_(comm),
      period_bound_(period_bound),
      n_(app.stage_count()),
      max_q_(std::min(max_procs, app.stage_count())) {
  if (!(speed_ > 0.0) || !(bandwidth_ > 0.0)) {
    throw std::invalid_argument("LatencyUnderPeriodDp: speed/bandwidth must be > 0");
  }
  if (max_procs == 0) {
    throw std::invalid_argument("LatencyUnderPeriodDp: needs >= 1 processor");
  }
  compute_prefix_.assign(n_ + 1, 0.0);
  boundary_.assign(n_ + 1, 0.0);
  for (std::size_t k = 0; k < n_; ++k) {
    compute_prefix_[k + 1] = compute_prefix_[k] + app.compute(k);
  }
  for (std::size_t i = 0; i <= n_; ++i) boundary_[i] = app.boundary_size(i);

  latency_.assign(max_q_, std::vector<double>(n_ + 1, util::kInfinity));
  choice_.assign(max_q_, std::vector<std::size_t>(n_ + 1, 0));
  // Empty prefix: only the input transfer has happened.
  const double input_comm = boundary_[0] / bandwidth_;
  for (std::size_t q = 0; q < max_q_; ++q) latency_[q][0] = input_comm;

  for (std::size_t q = 0; q < max_q_; ++q) {
    for (std::size_t i = 1; i <= n_; ++i) {
      double best = util::kInfinity;
      std::size_t best_j = 0;
      for (std::size_t j = 0; j < i; ++j) {
        if (q == 0 && j != 0) break;  // single interval must cover 1..i
        const double prev = (q == 0) ? latency_[0][0] : latency_[q - 1][j];
        if (!std::isfinite(prev)) continue;
        if (!util::approx_le(interval_cycle(j, i - 1), period_bound_)) continue;
        const double comp =
            (compute_prefix_[i] - compute_prefix_[j]) / speed_;
        const double out = boundary_[i] / bandwidth_;
        const double value = prev + comp + out;
        if (value < best) {
          best = value;
          best_j = j;
        }
      }
      latency_[q][i] = best;
      choice_[q][i] = best_j;
    }
  }
}

double LatencyUnderPeriodDp::interval_cycle(std::size_t first,
                                            std::size_t last) const {
  const double in = boundary_[first] / bandwidth_;
  const double comp = (compute_prefix_[last + 1] - compute_prefix_[first]) / speed_;
  const double out = boundary_[last + 1] / bandwidth_;
  return comm_ == CommModel::Overlap ? std::max({in, comp, out})
                                     : in + comp + out;
}

std::size_t LatencyUnderPeriodDp::clamp_q(std::size_t q) const noexcept {
  return std::min(q, max_q_);
}

double LatencyUnderPeriodDp::min_latency_by_count(std::size_t q) const {
  if (q == 0) return util::kInfinity;
  return latency_[clamp_q(q) - 1][n_];
}

std::vector<std::size_t> LatencyUnderPeriodDp::optimal_splits(std::size_t q) const {
  if (q == 0 || !std::isfinite(min_latency_by_count(q))) {
    throw std::invalid_argument("optimal_splits: infeasible configuration");
  }
  std::vector<std::size_t> ends;
  std::size_t i = n_;
  std::size_t level = clamp_q(q) - 1;
  while (i > 0) {
    ends.push_back(i - 1);
    i = choice_[level][i];
    level = (level == 0) ? 0 : level - 1;
  }
  std::reverse(ends.begin(), ends.end());
  return ends;
}

std::vector<double> period_candidates(const Application& app, double speed,
                                      double bandwidth, CommModel comm) {
  const std::size_t n = app.stage_count();
  std::vector<double> candidates;
  if (comm == CommModel::Overlap) {
    for (std::size_t i = 0; i <= n; ++i) {
      candidates.push_back(app.boundary_size(i) / bandwidth);
    }
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i; j < n; ++j) {
        candidates.push_back(app.total_compute(i, j) / speed);
      }
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i; j < n; ++j) {
        candidates.push_back(app.boundary_size(i) / bandwidth +
                             app.total_compute(i, j) / speed +
                             app.boundary_size(j + 1) / bandwidth);
      }
    }
  }
  return solvers::normalize_candidates(std::move(candidates));
}

double min_period_under_latency(const Application& app, double speed,
                                double bandwidth, CommModel comm, std::size_t q,
                                double latency_bound) {
  if (q == 0) return util::kInfinity;
  const std::vector<double> candidates =
      period_candidates(app, speed, bandwidth, comm);
  const auto result = solvers::min_feasible_candidate(candidates, [&](double t) {
    const LatencyUnderPeriodDp dp(app, speed, bandwidth, comm, q, t);
    const double latency = dp.min_latency_by_count(q);
    // +inf latency = period bound t unachievable, infeasible even against an
    // unconstrained (+inf) latency bound.
    return std::isfinite(latency) && util::approx_le(latency, latency_bound);
  });
  return result.value_or(util::kInfinity);
}

std::optional<Solution> multi_min_latency_under_period(
    const Problem& problem, const Thresholds& period_bounds) {
  require_fully_homogeneous(problem, "latency-under-period");
  const auto& platform = problem.platform();
  const double speed = platform.processor(0).max_speed();
  const double bw = platform.uniform_bandwidth();
  const std::size_t p = platform.processor_count();

  // One DP per application (the period bound is per-application, so the
  // tables are independent of the allocation).
  std::vector<LatencyUnderPeriodDp> dps;
  dps.reserve(problem.application_count());
  for (std::size_t a = 0; a < problem.application_count(); ++a) {
    dps.emplace_back(problem.application(a), speed, bw, problem.comm_model(), p,
                     period_bounds.bound(a));
  }

  const auto value = [&](std::size_t a, std::size_t k) {
    return problem.application(a).weight() * dps[a].min_latency_by_count(k);
  };
  const auto allocation =
      allocate_processors(problem.application_count(), p, value);
  if (!allocation) return std::nullopt;

  std::vector<std::vector<std::size_t>> splits;
  for (std::size_t a = 0; a < problem.application_count(); ++a) {
    splits.push_back(dps[a].optimal_splits(allocation->count[a]));
  }
  Solution solution;
  solution.value = allocation->objective;
  solution.mapping = splits_to_mapping(problem, splits);
  return solution;
}

std::optional<Solution> multi_min_period_under_latency(
    const Problem& problem, const Thresholds& latency_bounds) {
  require_fully_homogeneous(problem, "period-under-latency");
  const auto& platform = problem.platform();
  const double speed = platform.processor(0).max_speed();
  const double bw = platform.uniform_bandwidth();
  const std::size_t p = platform.processor_count();

  const auto value = [&](std::size_t a, std::size_t k) {
    return problem.application(a).weight() *
           min_period_under_latency(problem.application(a), speed, bw,
                                    problem.comm_model(), k,
                                    latency_bounds.bound(a));
  };
  const auto allocation =
      allocate_processors(problem.application_count(), p, value);
  if (!allocation) return std::nullopt;

  // Rebuild each application's optimal partition at its achieved period.
  std::vector<std::vector<std::size_t>> splits;
  for (std::size_t a = 0; a < problem.application_count(); ++a) {
    const std::size_t k = allocation->count[a];
    const double period = min_period_under_latency(
        problem.application(a), speed, bw, problem.comm_model(), k,
        latency_bounds.bound(a));
    const LatencyUnderPeriodDp dp(problem.application(a), speed, bw,
                                  problem.comm_model(), k, period);
    splits.push_back(dp.optimal_splits(k));
  }
  Solution solution;
  solution.value = allocation->objective;
  solution.mapping = splits_to_mapping(problem, splits);
  return solution;
}

}  // namespace pipeopt::algorithms
