#pragma once

/// \file one_to_one_period.hpp
/// Theorem 1: minimum-period one-to-one mapping on communication-homogeneous
/// platforms, in polynomial time.
///
/// The optimal period belongs to the candidate set
///   T = { W_a · combine(δ^{k-1}/b, w^k/s_u, δ^k/b) : stages (a,k), procs u }
/// because it equals the weighted cycle-time of some processor executing some
/// stage. Binary-search the sorted set, testing feasibility with Algorithm 1
/// (src/algorithms/greedy_assignment.hpp). Both communication models.

#include <optional>

#include "core/mapping.hpp"
#include "core/problem.hpp"

namespace pipeopt::algorithms {

/// An optimization outcome: achieved objective value plus witness mapping.
struct Solution {
  double value = 0.0;
  core::Mapping mapping;
};

/// Minimum max_a W_a·T_a over one-to-one mappings (processors at maximum
/// speed). Returns std::nullopt when p < N (one-to-one inapplicable).
/// \throws std::invalid_argument on fully heterogeneous platforms — the
/// problem is NP-hard there (Theorem 2); use the exact solvers instead.
[[nodiscard]] std::optional<Solution> one_to_one_min_period(
    const core::Problem& problem);

/// Feasibility of a one-to-one mapping with max_a W_a·T_a <= threshold.
/// Returns the witness mapping when feasible.
[[nodiscard]] std::optional<core::Mapping> one_to_one_period_feasible(
    const core::Problem& problem, double threshold);

}  // namespace pipeopt::algorithms
