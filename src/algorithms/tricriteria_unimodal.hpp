#pragma once

/// \file tricriteria_unimodal.hpp
/// Theorems 23 and 24: the tri-criteria (period/latency/energy) problem on
/// fully homogeneous *uni-modal* platforms is polynomial. With a single
/// speed, energy per enrolled processor is the constant E_stat + s^α, so an
/// energy budget is exactly a bound on the number of enrolled processors,
/// and every face of the tri-criteria problem reduces to the bi-criteria
/// machinery plus Algorithm 2:
///
///  * minimize period  given latency bounds + energy budget,
///  * minimize latency given period bounds + energy budget,
///  * minimize energy  given period + latency bounds (fewest processors).
///
/// With multi-modal processors the same problem is NP-hard even for one
/// application and no communications (Theorems 26–27) — see src/exact and
/// src/heuristics for those.

#include <optional>

#include "algorithms/one_to_one_period.hpp"  // for Solution
#include "core/objectives.hpp"
#include "core/problem.hpp"

namespace pipeopt::algorithms {

/// Number of processors affordable within the energy budget (uni-modal
/// fully homogeneous platform), clamped to the platform size.
[[nodiscard]] std::size_t affordable_processors(const core::Problem& problem,
                                                double energy_budget);

/// Theorem 23: one-to-one tri-criteria on fully homogeneous uni-modal
/// platforms — all one-to-one mappings are equivalent, so feasibility is a
/// single evaluation. Returns the mapping when all constraints hold.
[[nodiscard]] std::optional<Solution> one_to_one_tricriteria_feasible(
    const core::Problem& problem, const core::ConstraintSet& constraints);

/// Theorem 24, period face: minimize max_a W_a·T_a subject to per-app
/// latency bounds and a global energy budget (interval mapping).
[[nodiscard]] std::optional<Solution> interval_min_period_tricriteria(
    const core::Problem& problem, const core::Thresholds& latency_bounds,
    double energy_budget);

/// Theorem 24, latency face: minimize max_a W_a·L_a subject to per-app
/// period bounds and a global energy budget.
[[nodiscard]] std::optional<Solution> interval_min_latency_tricriteria(
    const core::Problem& problem, const core::Thresholds& period_bounds,
    double energy_budget);

/// Theorem 24, energy face: minimize total energy subject to per-app period
/// and latency bounds (fewest enrolled processors wins).
[[nodiscard]] std::optional<Solution> interval_min_energy_tricriteria(
    const core::Problem& problem, const core::Thresholds& period_bounds,
    const core::Thresholds& latency_bounds);

}  // namespace pipeopt::algorithms
