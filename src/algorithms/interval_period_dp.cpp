#include "algorithms/interval_period_dp.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/numeric.hpp"

namespace pipeopt::algorithms {

IntervalPeriodDp::IntervalPeriodDp(const core::Application& app, double speed,
                                   double bandwidth, core::CommModel comm,
                                   std::size_t max_procs)
    : weight_(app.weight()),
      speed_(speed),
      bandwidth_(bandwidth),
      comm_(comm),
      n_(app.stage_count()),
      max_q_(std::min(max_procs, app.stage_count())) {
  if (!(speed_ > 0.0) || !(bandwidth_ > 0.0)) {
    throw std::invalid_argument("IntervalPeriodDp: speed/bandwidth must be > 0");
  }
  if (max_procs == 0) {
    throw std::invalid_argument("IntervalPeriodDp: needs at least one processor");
  }
  compute_prefix_.assign(n_ + 1, 0.0);
  boundary_.assign(n_ + 1, 0.0);
  for (std::size_t k = 0; k < n_; ++k) {
    compute_prefix_[k + 1] = compute_prefix_[k] + app.compute(k);
  }
  for (std::size_t i = 0; i <= n_; ++i) boundary_[i] = app.boundary_size(i);

  // table_[q][i]: stages 1..i (1-based; i = 0 is the empty prefix) into at
  // most q+1 intervals.
  table_.assign(max_q_, std::vector<double>(n_ + 1, util::kInfinity));
  choice_.assign(max_q_, std::vector<std::size_t>(n_ + 1, 0));
  for (std::size_t q = 0; q < max_q_; ++q) table_[q][0] = 0.0;

  for (std::size_t q = 0; q < max_q_; ++q) {
    for (std::size_t i = 1; i <= n_; ++i) {
      if (q == 0) {
        table_[0][i] = interval_cost(0, i - 1);
        choice_[0][i] = 0;
        continue;
      }
      double best = util::kInfinity;
      std::size_t best_j = 0;
      for (std::size_t j = 0; j < i; ++j) {
        const double tail = interval_cost(j, i - 1);
        const double value = std::max(table_[q - 1][j], tail);
        if (value < best) {
          best = value;
          best_j = j;
        }
      }
      table_[q][i] = best;
      choice_[q][i] = best_j;
    }
  }
}

std::size_t IntervalPeriodDp::clamp_q(std::size_t q) const noexcept {
  return std::min(q, max_q_);
}

double IntervalPeriodDp::interval_cost(std::size_t first, std::size_t last) const {
  if (first > last || last >= n_) {
    throw std::out_of_range("IntervalPeriodDp::interval_cost: bad range");
  }
  const double in = boundary_[first] / bandwidth_;
  const double comp = (compute_prefix_[last + 1] - compute_prefix_[first]) / speed_;
  const double out = boundary_[last + 1] / bandwidth_;
  return comm_ == core::CommModel::Overlap ? std::max({in, comp, out})
                                           : in + comp + out;
}

double IntervalPeriodDp::min_period_by_count(std::size_t q) const {
  if (q == 0) return util::kInfinity;
  return table_[clamp_q(q) - 1][n_];
}

double IntervalPeriodDp::weighted_min_period_by_count(std::size_t q) const {
  return weight_ * min_period_by_count(q);
}

std::vector<std::size_t> IntervalPeriodDp::optimal_splits(std::size_t q) const {
  if (q == 0) throw std::invalid_argument("optimal_splits: q must be >= 1");
  std::vector<std::size_t> ends;
  std::size_t i = n_;
  std::size_t level = clamp_q(q) - 1;
  while (i > 0) {
    ends.push_back(i - 1);  // 0-based last stage of this interval
    const std::size_t j = choice_[level][i];
    i = j;
    level = (level == 0) ? 0 : level - 1;
  }
  std::reverse(ends.begin(), ends.end());
  return ends;
}

}  // namespace pipeopt::algorithms
