#include "algorithms/interval_period_multi.hpp"

#include <memory>
#include <stdexcept>

#include "algorithms/interval_period_dp.hpp"
#include "algorithms/processor_allocation.hpp"

namespace pipeopt::algorithms {
namespace {

using core::Mapping;
using core::PlatformClass;
using core::Problem;

void require_fully_homogeneous(const Problem& problem) {
  if (problem.platform().classify() != PlatformClass::FullyHomogeneous) {
    throw std::invalid_argument(
        "interval period minimization: polynomial only on fully homogeneous "
        "platforms (Theorem 3); NP-hard otherwise (Theorems 4-5)");
  }
}

/// Builds one DP per application at the platform's (common) maximum speed.
std::vector<std::unique_ptr<IntervalPeriodDp>> build_dps(const Problem& problem) {
  const auto& platform = problem.platform();
  const double speed = platform.processor(0).max_speed();
  const double bw = platform.uniform_bandwidth();
  std::vector<std::unique_ptr<IntervalPeriodDp>> dps;
  dps.reserve(problem.application_count());
  for (const auto& app : problem.applications()) {
    dps.push_back(std::make_unique<IntervalPeriodDp>(
        app, speed, bw, problem.comm_model(), platform.processor_count()));
  }
  return dps;
}

/// Turns per-application split lists into a Mapping, assigning distinct
/// processors in index order (identical processors: any order is optimal).
Mapping splits_to_mapping(const Problem& problem,
                          const std::vector<std::vector<std::size_t>>& splits) {
  std::vector<core::IntervalAssignment> intervals;
  std::size_t next_proc = 0;
  const std::size_t max_mode = problem.platform().processor(0).max_mode();
  for (std::size_t a = 0; a < splits.size(); ++a) {
    std::size_t first = 0;
    for (std::size_t last : splits[a]) {
      intervals.push_back({a, first, last, next_proc++, max_mode});
      first = last + 1;
    }
  }
  return Mapping(std::move(intervals));
}

}  // namespace

std::optional<Solution> interval_min_period(const Problem& problem) {
  require_fully_homogeneous(problem);
  const auto dps = build_dps(problem);

  const auto value = [&](std::size_t a, std::size_t k) {
    return dps[a]->weighted_min_period_by_count(k);
  };
  const auto allocation = allocate_processors(
      problem.application_count(), problem.platform().processor_count(), value);
  if (!allocation) return std::nullopt;

  std::vector<std::vector<std::size_t>> splits;
  splits.reserve(problem.application_count());
  for (std::size_t a = 0; a < problem.application_count(); ++a) {
    splits.push_back(dps[a]->optimal_splits(allocation->count[a]));
  }
  Solution solution;
  solution.value = allocation->objective;
  solution.mapping = splits_to_mapping(problem, splits);
  return solution;
}

double solo_interval_period(const Problem& problem, std::size_t app) {
  require_fully_homogeneous(problem);
  const auto& platform = problem.platform();
  const IntervalPeriodDp dp(problem.application(app),
                            platform.processor(0).max_speed(),
                            platform.uniform_bandwidth(), problem.comm_model(),
                            platform.processor_count());
  return dp.min_period_by_count(platform.processor_count());
}

}  // namespace pipeopt::algorithms
