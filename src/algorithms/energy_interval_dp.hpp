#pragma once

/// \file energy_interval_dp.hpp
/// Theorems 18 and 21: minimum-energy interval mappings under period
/// thresholds on fully homogeneous (multi-modal) platforms.
///
/// Single application (Theorem 18): prefix dynamic program
///   E[k][i] = min_{j<i} ( E[k-1][j] + cost1(j+1, i) )
/// where cost1 is the energy E_stat + s^α of the *slowest* mode whose
/// interval cycle-time meets the period bound (∞ when none does).
///
/// Several applications (Theorem 21): compose the per-application tables
/// with a knapsack over the processor budget:
///   G(a, k) = min_q ( E_a(q) + G(a-1, k-q) ).

#include <cstddef>
#include <optional>
#include <vector>

#include "algorithms/one_to_one_period.hpp"  // for Solution
#include "core/objectives.hpp"
#include "core/problem.hpp"

namespace pipeopt::algorithms {

/// Per-application energy DP on a fully homogeneous multi-modal platform.
class EnergyIntervalDp {
 public:
  /// \param period_bound unweighted per-interval period threshold T_a.
  EnergyIntervalDp(const core::Problem& problem, std::size_t app,
                   std::size_t max_procs, double period_bound);

  /// Minimum energy using exactly k processors; +inf when infeasible.
  [[nodiscard]] double min_energy_exact(std::size_t k) const;

  /// Minimum energy using at most k processors; +inf when infeasible.
  [[nodiscard]] double min_energy_at_most(std::size_t k) const;

  /// An optimal plan with at most k processors.
  struct Plan {
    std::vector<std::size_t> ends;   ///< inclusive last stage per interval
    std::vector<std::size_t> modes;  ///< chosen mode per interval
  };
  [[nodiscard]] std::optional<Plan> optimal_plan(std::size_t k) const;

  [[nodiscard]] std::size_t max_intervals() const noexcept { return max_k_; }

 private:
  /// Energy of the cheapest feasible mode for stages [first..last], and the
  /// mode index; {+inf, 0} when infeasible.
  [[nodiscard]] std::pair<double, std::size_t> interval_energy(
      std::size_t first, std::size_t last) const;

  std::vector<double> compute_prefix_;
  std::vector<double> boundary_;
  std::vector<double> speeds_;  ///< the common mode set
  std::vector<double> mode_energy_;
  double bandwidth_;
  core::CommModel comm_;
  double period_bound_;
  std::size_t n_;
  std::size_t max_k_;
  std::vector<std::vector<double>> energy_;       // [k][i], k = exact count - 1
  std::vector<std::vector<std::size_t>> choice_;  // [k][i]
};

/// Theorem 18 (single application) / Theorem 21 (several applications):
/// minimum total energy of an interval mapping with per-application period
/// bounds on a fully homogeneous platform.
/// \throws std::invalid_argument unless the platform is fully homogeneous
/// (Theorem 22: NP-hard otherwise).
[[nodiscard]] std::optional<Solution> interval_min_energy_under_period(
    const core::Problem& problem, const core::Thresholds& period_bounds);

}  // namespace pipeopt::algorithms
