#include "algorithms/processor_allocation.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/numeric.hpp"

namespace pipeopt::algorithms {

std::optional<AllocationResult> allocate_processors(std::size_t applications,
                                                    std::size_t processors,
                                                    const AllocationValueFn& f) {
  if (applications == 0) throw std::invalid_argument("allocate_processors: A == 0");
  if (processors < applications) return std::nullopt;  // one processor each

  // Bootstrap at the minimal feasible count per application.
  std::vector<std::size_t> count(applications, 0);
  std::size_t used = 0;
  for (std::size_t a = 0; a < applications; ++a) {
    std::size_t k = 1;
    while (k <= processors && !std::isfinite(f(a, k))) ++k;
    if (k > processors) return std::nullopt;  // infeasible even alone
    count[a] = k;
    used += k;
  }
  if (used > processors) return std::nullopt;

  std::vector<double> value(applications);
  for (std::size_t a = 0; a < applications; ++a) value[a] = f(a, count[a]);

  // Greedy: hand each remaining processor to the current bottleneck.
  for (; used < processors; ++used) {
    std::size_t worst = 0;
    for (std::size_t a = 1; a < applications; ++a) {
      if (value[a] > value[worst]) worst = a;
    }
    ++count[worst];
    value[worst] = f(worst, count[worst]);
  }

  AllocationResult result;
  result.count = std::move(count);
  result.objective = *std::max_element(value.begin(), value.end());
  return result;
}

std::optional<AllocationResult> minimal_counts_for_bounds(
    std::size_t applications, std::size_t processors, const AllocationValueFn& f,
    const std::vector<double>& bounds) {
  if (bounds.size() != applications) {
    throw std::invalid_argument("minimal_counts_for_bounds: arity mismatch");
  }
  AllocationResult result;
  result.count.assign(applications, 0);
  std::size_t used = 0;
  double objective = 0.0;
  for (std::size_t a = 0; a < applications; ++a) {
    std::size_t k = 1;
    double v = util::kInfinity;
    // An infinite value means "infeasible with k processors" even against an
    // unconstrained (+inf) bound, so finiteness is required explicitly.
    const auto meets_bound = [&](double value) {
      return std::isfinite(value) && util::approx_le(value, bounds[a]);
    };
    for (; used + k <= processors; ++k) {
      v = f(a, k);
      if (meets_bound(v)) break;
    }
    if (used + k > processors || !meets_bound(v)) {
      return std::nullopt;
    }
    result.count[a] = k;
    used += k;
    objective = std::max(objective, v);
  }
  result.objective = objective;
  return result;
}

}  // namespace pipeopt::algorithms
