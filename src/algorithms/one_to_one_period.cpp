#include "algorithms/one_to_one_period.hpp"

#include <stdexcept>

#include "algorithms/greedy_assignment.hpp"
#include "solvers/search.hpp"

namespace pipeopt::algorithms {
namespace {

using core::CommModel;
using core::Mapping;
using core::Problem;

CostCombine combine_of(const Problem& problem) {
  return problem.comm_model() == CommModel::Overlap ? CostCombine::Max
                                                    : CostCombine::Sum;
}

/// Builds the per-stage items (in/out terms use the uniform bandwidth).
std::vector<GreedyItem> stage_items(const Problem& problem) {
  const double b = problem.platform().uniform_bandwidth();
  std::vector<GreedyItem> items;
  items.reserve(problem.total_stages());
  for (std::size_t a = 0; a < problem.application_count(); ++a) {
    const auto& app = problem.application(a);
    for (std::size_t k = 0; k < app.stage_count(); ++k) {
      GreedyItem item;
      item.in_comm = app.boundary_size(k) / b;
      item.compute = app.compute(k);
      item.out_comm = app.boundary_size(k + 1) / b;
      item.weight = app.weight();
      items.push_back(item);
    }
  }
  return items;
}

/// Converts an item assignment back into a Mapping (items are stages in
/// (app, stage) order; fastest modes per the §4 normalization).
Mapping to_mapping(const Problem& problem, const GreedyAssignment& assignment) {
  std::vector<core::IntervalAssignment> intervals;
  intervals.reserve(problem.total_stages());
  std::size_t item = 0;
  for (std::size_t a = 0; a < problem.application_count(); ++a) {
    const auto& app = problem.application(a);
    for (std::size_t k = 0; k < app.stage_count(); ++k, ++item) {
      const std::size_t proc = assignment.proc_of_item[item];
      intervals.push_back(
          {a, k, k, proc, problem.platform().processor(proc).max_mode()});
    }
  }
  return Mapping(std::move(intervals));
}

void require_comm_homogeneous(const Problem& problem) {
  if (!problem.platform().has_uniform_bandwidth()) {
    throw std::invalid_argument(
        "one-to-one period minimization: NP-hard on fully heterogeneous "
        "platforms (Theorem 2); this algorithm requires uniform links");
  }
}

}  // namespace

std::optional<Solution> one_to_one_min_period(const Problem& problem) {
  require_comm_homogeneous(problem);
  if (!problem.one_to_one_applicable()) return std::nullopt;

  const std::vector<GreedyItem> items = stage_items(problem);
  const CostCombine combine = combine_of(problem);
  const auto& platform = problem.platform();

  // Candidate set T: every weighted stage-on-processor cycle-time.
  std::vector<double> candidates;
  candidates.reserve(items.size() * platform.processor_count());
  for (const GreedyItem& item : items) {
    for (std::size_t u = 0; u < platform.processor_count(); ++u) {
      candidates.push_back(
          item_cost(item, platform.processor(u).max_speed(), combine));
    }
  }
  candidates = solvers::normalize_candidates(std::move(candidates));

  const auto period = solvers::min_feasible_candidate(candidates, [&](double t) {
    return greedy_assign(platform, items, t, combine).has_value();
  });
  if (!period) return std::nullopt;

  auto assignment = greedy_assign(platform, items, *period, combine);
  if (!assignment) return std::nullopt;  // unreachable: *period is feasible
  Solution solution;
  solution.value = *period;
  solution.mapping = to_mapping(problem, *assignment);
  return solution;
}

std::optional<Mapping> one_to_one_period_feasible(const Problem& problem,
                                                  double threshold) {
  require_comm_homogeneous(problem);
  if (!problem.one_to_one_applicable()) return std::nullopt;
  const auto assignment = greedy_assign(problem.platform(), stage_items(problem),
                                        threshold, combine_of(problem));
  if (!assignment) return std::nullopt;
  return to_mapping(problem, *assignment);
}

}  // namespace pipeopt::algorithms
