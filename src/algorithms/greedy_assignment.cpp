#include "algorithms/greedy_assignment.hpp"

#include <algorithm>
#include <stdexcept>

#include "solvers/hopcroft_karp.hpp"
#include "util/numeric.hpp"

namespace pipeopt::algorithms {

double item_cost(const GreedyItem& item, double speed,
                 CostCombine combine) noexcept {
  const double comp = item.compute / speed;
  const double raw = (combine == CostCombine::Max)
                         ? std::max({item.in_comm, comp, item.out_comm})
                         : item.in_comm + comp + item.out_comm;
  return item.weight * raw;
}

std::optional<GreedyAssignment> greedy_assign(const core::Platform& platform,
                                              const std::vector<GreedyItem>& items,
                                              double threshold,
                                              CostCombine combine) {
  const std::size_t n = items.size();
  if (n > platform.processor_count()) return std::nullopt;

  // Fastest N processors, then scanned slowest-first (Algorithm 1).
  std::vector<std::size_t> procs = platform.processors_by_max_speed_desc();
  procs.resize(n);
  std::reverse(procs.begin(), procs.end());

  GreedyAssignment result;
  result.proc_of_item.assign(n, 0);
  std::vector<char> taken(n, 0);
  for (std::size_t u : procs) {
    const double speed = platform.processor(u).max_speed();
    // "Pick up any free stage" — the exchange argument makes any feasible
    // choice optimal; we take the first.
    std::size_t chosen = n;
    for (std::size_t i = 0; i < n; ++i) {
      if (taken[i]) continue;
      if (util::approx_le(item_cost(items[i], speed, combine), threshold)) {
        chosen = i;
        break;
      }
    }
    if (chosen == n) return std::nullopt;  // "failure"
    taken[chosen] = 1;
    result.proc_of_item[chosen] = u;
  }
  return result;
}

bool matching_feasible(const core::Platform& platform,
                       const std::vector<GreedyItem>& items, double threshold,
                       CostCombine combine) {
  solvers::BipartiteGraph graph(items.size(), platform.processor_count());
  for (std::size_t i = 0; i < items.size(); ++i) {
    for (std::size_t u = 0; u < platform.processor_count(); ++u) {
      const double speed = platform.processor(u).max_speed();
      if (util::approx_le(item_cost(items[i], speed, combine), threshold)) {
        graph.add_edge(i, u);
      }
    }
  }
  return solvers::has_left_perfect_matching(graph);
}

}  // namespace pipeopt::algorithms
