#pragma once

/// \file processor_allocation.hpp
/// Algorithm 2 of the paper, in its general form: distribute p identical
/// processors among A applications to minimize max_a f_a(k_a), where every
/// f_a is non-increasing in the processor count k_a (more processors never
/// hurt). The paper's proof is an exchange/induction argument over the
/// greedy "give the next processor to the current arg-max" rule; it applies
/// verbatim to any non-increasing f_a, which is how Theorems 3, 16 and 24
/// all reuse this routine with different per-application value functions
/// (period DP, latency-under-period DP, period-under-latency search).
///
/// Extension for constrained variants: f_a may be +inf while the application
/// cannot meet its thresholds with so few processors. The greedy is then
/// bootstrapped at k_min_a = min{k : f_a(k) < inf}; any feasible allocation
/// has k_a >= k_min_a, so optimality is preserved.

#include <cstddef>
#include <functional>
#include <optional>
#include <vector>

namespace pipeopt::algorithms {

/// Value function: f(app, k) for k in [1, p]; must be non-increasing in k.
/// Weights W_a are the caller's responsibility (fold them into f).
using AllocationValueFn = std::function<double(std::size_t app, std::size_t k)>;

/// Outcome of an allocation.
struct AllocationResult {
  std::vector<std::size_t> count;  ///< processors per application (>= 1)
  double objective = 0.0;          ///< max_a f_a(count[a])
};

/// Algorithm 2. Returns std::nullopt when even the minimal feasible counts
/// exceed p (or some application is infeasible with all p processors).
/// Calls f O(A·p) times; memoize inside f if evaluations are expensive.
[[nodiscard]] std::optional<AllocationResult> allocate_processors(
    std::size_t applications, std::size_t processors, const AllocationValueFn& f);

/// Variant that minimizes the *total* count while achieving per-application
/// thresholds: count[a] = min{k : f_a(k) <= bound_a}. Used by the
/// energy-minimizing face of Theorem 24 (every processor has the same
/// energy, so fewest processors = least energy). Returns std::nullopt when
/// some application cannot meet its bound with the processors remaining.
[[nodiscard]] std::optional<AllocationResult> minimal_counts_for_bounds(
    std::size_t applications, std::size_t processors, const AllocationValueFn& f,
    const std::vector<double>& bounds);

}  // namespace pipeopt::algorithms
