#pragma once

/// \file interval_period_multi.hpp
/// Theorem 3: minimum-period interval mapping of several concurrent
/// applications on fully homogeneous platforms, in polynomial time.
///
/// Per-application optimal periods by processor count come from the
/// chains-on-chains DP (IntervalPeriodDp); Algorithm 2 distributes the p
/// processors across applications. Works for both communication models and
/// arbitrary weights W_a (the NP-hardness of Theorems 5–7 only kicks in with
/// heterogeneous processors).

#include <optional>

#include "algorithms/one_to_one_period.hpp"  // for Solution
#include "core/problem.hpp"

namespace pipeopt::algorithms {

/// Minimum max_a W_a·T_a over interval mappings on a fully homogeneous
/// platform (processors at maximum speed).
/// \throws std::invalid_argument unless the platform is fully homogeneous.
[[nodiscard]] std::optional<Solution> interval_min_period(
    const core::Problem& problem);

/// Solo optimum: the best period application `app` could achieve with the
/// whole platform to itself (used for stretch weights, §3.4).
[[nodiscard]] double solo_interval_period(const core::Problem& problem,
                                          std::size_t app);

}  // namespace pipeopt::algorithms
