#pragma once

/// \file greedy_assignment.hpp
/// Algorithm 1 of the paper: greedy feasibility test for a prescribed
/// threshold on communication-homogeneous platforms.
///
/// The abstract shape: N independent items must go to N distinct processors,
/// one each; item i on a processor of speed s costs
///     weight_i · combine(in_i, compute_i / s, out_i)
/// where combine is max(...) in the overlap model and a sum in the
/// no-overlap model (in_i/out_i are speed-independent on comm-homogeneous
/// platforms — that is exactly why the greedy works there).
///
/// Keep the fastest N processors, scan them slowest-first, let each take any
/// free item it can process within the threshold. The exchange argument of
/// Theorem 1 shows this succeeds iff a feasible assignment exists: anything
/// feasible on a slow processor is feasible on every faster one.
///
/// Instantiations: one-to-one period minimization (items = stages,
/// Theorem 1) and interval latency minimization (items = whole applications
/// mapped to single processors, Theorem 12).

#include <cstddef>
#include <optional>
#include <vector>

#include "core/problem.hpp"

namespace pipeopt::algorithms {

/// How the three cost pieces combine into a cycle-time/latency.
enum class CostCombine {
  Max,  ///< overlap-model cycle-time (Eq. 3 shape)
  Sum   ///< no-overlap cycle-time / latency (Eq. 4 / Eq. 5 shape)
};

/// One assignable item.
struct GreedyItem {
  double in_comm = 0.0;   ///< speed-independent incoming term
  double compute = 0.0;   ///< divided by the processor speed
  double out_comm = 0.0;  ///< speed-independent outgoing term
  double weight = 1.0;    ///< W_a multiplier
};

/// Weighted cost of an item on a processor of the given speed.
[[nodiscard]] double item_cost(const GreedyItem& item, double speed,
                               CostCombine combine) noexcept;

/// Result: processor index (into the platform) per item.
struct GreedyAssignment {
  std::vector<std::size_t> proc_of_item;
};

/// Algorithm 1. Returns the assignment when the threshold is achievable,
/// std::nullopt otherwise. Processors run at their maximum speeds (the §4
/// normalization). Requires items.size() <= processor count.
[[nodiscard]] std::optional<GreedyAssignment> greedy_assign(
    const core::Platform& platform, const std::vector<GreedyItem>& items,
    double threshold, CostCombine combine);

/// Independent feasibility oracle for the same question via a bipartite
/// matching (Hopcroft–Karp): edge (item, processor) when the item fits
/// within the threshold. Used by property tests to cross-check the greedy.
[[nodiscard]] bool matching_feasible(const core::Platform& platform,
                                     const std::vector<GreedyItem>& items,
                                     double threshold, CostCombine combine);

}  // namespace pipeopt::algorithms
