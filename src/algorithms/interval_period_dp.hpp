#pragma once

/// \file interval_period_dp.hpp
/// Single-application interval period minimization on identical processors —
/// the dynamic program behind Theorem 3 (from Benoit & Robert [4], extended
/// to both communication models).
///
/// For one application on q identical processors of speed s with uniform
/// bandwidth b, the optimal period over interval mappings is the classic
/// chains-on-chains min-max partition:
///   T(i, q) = min_{j < i} max( T(j, q-1), cost(j+1, i) )
/// where cost is the interval cycle-time (Eq. 3 or Eq. 4 shape).
///
/// The table is computed for every q at once; `min_period_by_count(q)` is
/// the non-increasing function f_a(q) that Algorithm 2 consumes.

#include <cstddef>
#include <vector>

#include "core/application.hpp"
#include "core/problem.hpp"

namespace pipeopt::core {
class Mapping;
}

namespace pipeopt::algorithms {

/// DP over one application on identical processors.
class IntervalPeriodDp {
 public:
  /// \param app    the application (δ⁰..δⁿ, w¹..wⁿ, W_a).
  /// \param speed  common processor speed.
  /// \param bandwidth uniform link bandwidth (also used for source/sink links).
  /// \param comm   communication model (max vs sum interval cost).
  /// \param max_procs table width (counts above stage count are clamped).
  IntervalPeriodDp(const core::Application& app, double speed, double bandwidth,
                   core::CommModel comm, std::size_t max_procs);

  /// Unweighted optimal period using at most q processors (q >= 1).
  /// Non-increasing in q; q larger than the stage count is clamped.
  [[nodiscard]] double min_period_by_count(std::size_t q) const;

  /// W_a · min_period_by_count(q).
  [[nodiscard]] double weighted_min_period_by_count(std::size_t q) const;

  /// Split points of an optimal partition into at most q intervals: returns
  /// the (inclusive) last stage of every interval, in order.
  [[nodiscard]] std::vector<std::size_t> optimal_splits(std::size_t q) const;

  [[nodiscard]] std::size_t stage_count() const noexcept { return n_; }

  /// Cycle-time of the interval [first..last] (0-based, inclusive) in this
  /// DP's cost model — exposed for tests and the bi-criteria DP.
  [[nodiscard]] double interval_cost(std::size_t first, std::size_t last) const;

 private:
  [[nodiscard]] std::size_t clamp_q(std::size_t q) const noexcept;

  // Copied instance data (the DP outlives any Application reference).
  std::vector<double> compute_prefix_;  ///< size n+1
  std::vector<double> boundary_;        ///< size n+1 (δ⁰..δⁿ)
  double weight_;
  double speed_;
  double bandwidth_;
  core::CommModel comm_;
  std::size_t n_;
  std::size_t max_q_;
  // table_[q][i]: optimal period of stages 1..i with at most q+1 intervals.
  std::vector<std::vector<double>> table_;
  // choice_[q][i]: split point j (prefix 1..j recurses) realizing table_[q][i].
  std::vector<std::vector<std::size_t>> choice_;
};

}  // namespace pipeopt::algorithms
