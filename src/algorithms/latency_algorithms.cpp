#include "algorithms/latency_algorithms.hpp"

#include <algorithm>
#include <stdexcept>

#include "algorithms/greedy_assignment.hpp"
#include "core/evaluation.hpp"
#include "solvers/search.hpp"

namespace pipeopt::algorithms {
namespace {

using core::Mapping;
using core::PlatformClass;
using core::Problem;

/// Latency items: one per application, mapped whole onto one processor.
/// Latency is always the Sum combination (Eq. 5), independent of the model.
std::vector<GreedyItem> app_items(const Problem& problem) {
  const double b = problem.platform().uniform_bandwidth();
  std::vector<GreedyItem> items;
  items.reserve(problem.application_count());
  for (std::size_t a = 0; a < problem.application_count(); ++a) {
    const auto& app = problem.application(a);
    GreedyItem item;
    item.in_comm = app.boundary_size(0) / b;
    item.compute = app.total_compute();
    item.out_comm = app.boundary_size(app.stage_count()) / b;
    item.weight = app.weight();
    items.push_back(item);
  }
  return items;
}

Mapping apps_to_mapping(const Problem& problem, const GreedyAssignment& assignment) {
  std::vector<core::IntervalAssignment> intervals;
  intervals.reserve(problem.application_count());
  for (std::size_t a = 0; a < problem.application_count(); ++a) {
    const std::size_t proc = assignment.proc_of_item[a];
    intervals.push_back({a, 0, problem.application(a).stage_count() - 1, proc,
                         problem.platform().processor(proc).max_mode()});
  }
  return Mapping(std::move(intervals));
}

void require_comm_homogeneous(const Problem& problem) {
  if (!problem.platform().has_uniform_bandwidth()) {
    throw std::invalid_argument(
        "interval latency minimization: NP-hard on fully heterogeneous "
        "platforms (Theorem 13); this algorithm requires uniform links");
  }
}

}  // namespace

std::optional<Solution> one_to_one_min_latency_fully_hom(const Problem& problem) {
  if (problem.platform().classify() != PlatformClass::FullyHomogeneous) {
    throw std::invalid_argument(
        "one-to-one latency: trivial only on fully homogeneous platforms "
        "(Theorem 8); NP-hard with heterogeneous processors (Theorem 9)");
  }
  if (!problem.one_to_one_applicable()) return std::nullopt;

  // All one-to-one mappings are equivalent: assign stages to processors in
  // order, at maximum speed.
  std::vector<core::IntervalAssignment> intervals;
  std::size_t proc = 0;
  const std::size_t max_mode = problem.platform().processor(0).max_mode();
  for (std::size_t a = 0; a < problem.application_count(); ++a) {
    for (std::size_t k = 0; k < problem.application(a).stage_count(); ++k) {
      intervals.push_back({a, k, k, proc++, max_mode});
    }
  }
  Solution solution;
  solution.mapping = Mapping(std::move(intervals));
  solution.value =
      core::evaluate(problem, solution.mapping).max_weighted_latency;
  return solution;
}

std::optional<Solution> interval_min_latency(const Problem& problem) {
  require_comm_homogeneous(problem);
  const auto& platform = problem.platform();
  if (platform.processor_count() < problem.application_count()) {
    return std::nullopt;
  }
  const std::vector<GreedyItem> items = app_items(problem);

  std::vector<double> candidates;
  candidates.reserve(items.size() * platform.processor_count());
  for (const GreedyItem& item : items) {
    for (std::size_t u = 0; u < platform.processor_count(); ++u) {
      candidates.push_back(
          item_cost(item, platform.processor(u).max_speed(), CostCombine::Sum));
    }
  }
  candidates = solvers::normalize_candidates(std::move(candidates));

  const auto latency = solvers::min_feasible_candidate(candidates, [&](double t) {
    return greedy_assign(platform, items, t, CostCombine::Sum).has_value();
  });
  if (!latency) return std::nullopt;

  const auto assignment =
      greedy_assign(platform, items, *latency, CostCombine::Sum);
  if (!assignment) return std::nullopt;  // unreachable
  Solution solution;
  solution.value = *latency;
  solution.mapping = apps_to_mapping(problem, *assignment);
  return solution;
}

std::optional<Mapping> interval_latency_feasible(const Problem& problem,
                                                 double threshold) {
  require_comm_homogeneous(problem);
  if (problem.platform().processor_count() < problem.application_count()) {
    return std::nullopt;
  }
  const auto assignment = greedy_assign(problem.platform(), app_items(problem),
                                        threshold, CostCombine::Sum);
  if (!assignment) return std::nullopt;
  return apps_to_mapping(problem, *assignment);
}

double solo_interval_latency(const Problem& problem, std::size_t app) {
  require_comm_homogeneous(problem);
  const auto& platform = problem.platform();
  double best_speed = 0.0;
  for (const auto& proc : platform.processors()) {
    best_speed = std::max(best_speed, proc.max_speed());
  }
  const auto& a = problem.application(app);
  const double b = platform.uniform_bandwidth();
  return a.boundary_size(0) / b + a.total_compute() / best_speed +
         a.boundary_size(a.stage_count()) / b;
}

}  // namespace pipeopt::algorithms
