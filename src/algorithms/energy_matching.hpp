#pragma once

/// \file energy_matching.hpp
/// Theorem 19: minimum-energy one-to-one mapping under per-application
/// period thresholds on communication-homogeneous platforms, via
/// minimum-weight bipartite matching.
///
/// Build the bipartite graph {stages} × {processors}; the weight of edge
/// (stage, P_u) is the energy of the *slowest mode* of P_u that executes the
/// stage within the application's period threshold (∞ if even the fastest
/// mode is too slow). A minimum-weight matching covering all stages is the
/// cheapest feasible one-to-one mapping.
///
/// (The paper invokes Hopcroft–Karp here, but that algorithm solves the
/// unweighted matching problem; the minimum-weight matching this proof needs
/// is solved by the Hungarian method — see EXPERIMENTS.md.)

#include <optional>

#include "algorithms/one_to_one_period.hpp"  // for Solution
#include "core/objectives.hpp"
#include "core/problem.hpp"

namespace pipeopt::algorithms {

/// Minimum total energy of a one-to-one mapping with W-independent per-app
/// period bounds T_a (unweighted bounds; fold weights via
/// Thresholds::uniform when a single weighted bound is meant).
/// Returns std::nullopt when infeasible (p < N or no matching).
/// \throws std::invalid_argument on fully heterogeneous platforms
/// (Theorem 20: NP-hard).
[[nodiscard]] std::optional<Solution> one_to_one_min_energy_under_period(
    const core::Problem& problem, const core::Thresholds& period_bounds);

}  // namespace pipeopt::algorithms
