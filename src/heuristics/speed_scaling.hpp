#pragma once

/// \file speed_scaling.hpp
/// Greedy DVFS downscaling: from a constraint-satisfying mapping, repeatedly
/// lower the speed mode that saves the most energy while all constraints
/// keep holding. This is the natural tri-criteria heuristic on multi-modal
/// platforms (where the exact problem is NP-hard, Theorems 26-27): solve the
/// performance problem at full speed first, then trade the slack for energy.

#include <cstdint>

#include "core/mapping.hpp"
#include "core/objectives.hpp"
#include "core/problem.hpp"

namespace pipeopt::core {
class BatchEvaluator;
}

namespace pipeopt::heuristics {

/// Downscaling controls.
struct SpeedScalingOptions {
  /// Shared evaluation workspace; the pass binds its own when null. Each
  /// mode-step trial is a single-application delta evaluation.
  core::BatchEvaluator* evaluator = nullptr;
  /// The pass structurally validates the input exactly once, up front (see
  /// LocalSearchOptions::validate_start); false skips the re-validation.
  bool validate_start = true;
};

/// Result of a downscaling pass.
struct SpeedScalingResult {
  core::Mapping mapping;
  double energy_before = 0.0;
  double energy_after = 0.0;
  std::size_t steps = 0;    ///< accepted single-mode reductions
  std::uint64_t evals = 0;  ///< evaluations performed by this pass
};

/// Greedily lowers modes while `constraints` stay satisfied. The input
/// mapping must itself satisfy the constraints (checked; throws
/// std::invalid_argument otherwise — scaling cannot repair an infeasible
/// start).
[[nodiscard]] SpeedScalingResult scale_down_speeds(
    const core::Problem& problem, const core::Mapping& mapping,
    const core::ConstraintSet& constraints,
    const SpeedScalingOptions& options = {});

}  // namespace pipeopt::heuristics
