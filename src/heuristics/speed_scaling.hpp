#pragma once

/// \file speed_scaling.hpp
/// Greedy DVFS downscaling: from a constraint-satisfying mapping, repeatedly
/// lower the speed mode that saves the most energy while all constraints
/// keep holding. This is the natural tri-criteria heuristic on multi-modal
/// platforms (where the exact problem is NP-hard, Theorems 26-27): solve the
/// performance problem at full speed first, then trade the slack for energy.

#include "core/mapping.hpp"
#include "core/objectives.hpp"
#include "core/problem.hpp"

namespace pipeopt::heuristics {

/// Result of a downscaling pass.
struct SpeedScalingResult {
  core::Mapping mapping;
  double energy_before = 0.0;
  double energy_after = 0.0;
  std::size_t steps = 0;  ///< accepted single-mode reductions
};

/// Greedily lowers modes while `constraints` stay satisfied. The input
/// mapping must itself satisfy the constraints (checked; throws
/// std::invalid_argument otherwise — scaling cannot repair an infeasible
/// start).
[[nodiscard]] SpeedScalingResult scale_down_speeds(
    const core::Problem& problem, const core::Mapping& mapping,
    const core::ConstraintSet& constraints);

}  // namespace pipeopt::heuristics
