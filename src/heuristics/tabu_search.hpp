#pragma once

/// \file tabu_search.hpp
/// Tabu search over the shared mapping neighbourhood: best-admissible-move
/// descent that may climb out of local minima, with a recency-based tabu
/// list keyed on the mapping's structural signature. Sits between hill
/// climbing (cheap, myopic) and simulated annealing (stochastic) in the
/// §6 heuristic ladder; deterministic given its options.

#include <cstdint>
#include <functional>

#include "core/mapping.hpp"
#include "core/objectives.hpp"
#include "core/problem.hpp"
#include "heuristics/local_search.hpp"  // Goal

namespace pipeopt::heuristics {

/// Tabu controls.
struct TabuOptions {
  std::size_t iterations = 300;  ///< total moves taken
  std::size_t tenure = 25;       ///< signatures kept tabu
  /// Polled every iteration; returning true ends the search with the best
  /// feasible incumbent so far (time budgets, cancellation). Null = never.
  std::function<bool()> should_stop;
  /// Shared evaluation workspace; the search binds its own when null.
  core::BatchEvaluator* evaluator = nullptr;
  /// The search structurally validates `start` exactly once, up front (see
  /// LocalSearchOptions::validate_start); false skips the re-validation.
  bool validate_start = true;
};

/// Tabu outcome; `value` is +inf when no feasible state was ever seen.
struct TabuResult {
  core::Mapping mapping;
  double value = 0.0;
  std::size_t moves = 0;    ///< accepted (non-stuck) iterations
  std::uint64_t evals = 0;  ///< evaluations performed by this search
};

/// Runs tabu search from `start` (need not satisfy the constraints; only
/// feasible states become incumbents).
[[nodiscard]] TabuResult tabu_search(const core::Problem& problem,
                                     const core::Mapping& start, Goal goal,
                                     const core::ConstraintSet& constraints = {},
                                     const TabuOptions& options = {});

}  // namespace pipeopt::heuristics
