#include "heuristics/list_heuristics.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

namespace pipeopt::heuristics {

std::optional<core::Mapping> one_to_one_rank_matching(
    const core::Problem& problem) {
  if (!problem.one_to_one_applicable()) return std::nullopt;

  struct StageRef {
    std::size_t app;
    std::size_t stage;
    double weighted_compute;
  };
  std::vector<StageRef> stages;
  stages.reserve(problem.total_stages());
  for (std::size_t a = 0; a < problem.application_count(); ++a) {
    const auto& app = problem.application(a);
    for (std::size_t k = 0; k < app.stage_count(); ++k) {
      stages.push_back({a, k, app.weight() * app.compute(k)});
    }
  }
  std::stable_sort(stages.begin(), stages.end(),
                   [](const StageRef& x, const StageRef& y) {
                     return x.weighted_compute > y.weighted_compute;
                   });
  const std::vector<std::size_t> procs =
      problem.platform().processors_by_max_speed_desc();

  std::vector<core::IntervalAssignment> intervals;
  intervals.reserve(stages.size());
  for (std::size_t i = 0; i < stages.size(); ++i) {
    const std::size_t u = procs[i];
    intervals.push_back({stages[i].app, stages[i].stage, stages[i].stage, u,
                         problem.platform().processor(u).max_mode()});
  }
  return core::Mapping(std::move(intervals));
}

}  // namespace pipeopt::heuristics
