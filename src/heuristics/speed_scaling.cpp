#include "heuristics/speed_scaling.hpp"

#include <stdexcept>
#include <vector>

#include "core/evaluation.hpp"

namespace pipeopt::heuristics {

SpeedScalingResult scale_down_speeds(const core::Problem& problem,
                                     const core::Mapping& mapping,
                                     const core::ConstraintSet& constraints) {
  core::Metrics metrics = core::evaluate(problem, mapping);
  if (!constraints.satisfied_by(metrics)) {
    throw std::invalid_argument(
        "scale_down_speeds: the starting mapping violates the constraints");
  }

  SpeedScalingResult result;
  result.energy_before = metrics.energy;
  std::vector<core::IntervalAssignment> current(mapping.intervals().begin(),
                                                mapping.intervals().end());

  for (;;) {
    // Try every single-step mode reduction; keep the one saving the most
    // energy among those that stay feasible.
    double best_saving = 0.0;
    std::size_t best_interval = current.size();
    core::Metrics best_metrics;
    for (std::size_t i = 0; i < current.size(); ++i) {
      if (current[i].mode == 0) continue;
      auto candidate = current;
      --candidate[i].mode;
      const core::Mapping trial{std::vector<core::IntervalAssignment>(candidate)};
      const core::Metrics m = core::evaluate(problem, trial, false);
      if (!constraints.satisfied_by(m)) continue;
      const double saving = metrics.energy - m.energy;
      if (saving > best_saving) {
        best_saving = saving;
        best_interval = i;
        best_metrics = m;
      }
    }
    if (best_interval == current.size()) break;  // no feasible reduction left
    --current[best_interval].mode;
    metrics = best_metrics;
    ++result.steps;
  }

  result.energy_after = metrics.energy;
  result.mapping = core::Mapping(std::move(current));
  return result;
}

}  // namespace pipeopt::heuristics
