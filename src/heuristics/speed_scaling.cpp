#include "heuristics/speed_scaling.hpp"

#include <optional>
#include <stdexcept>
#include <vector>

#include "core/eval_batch.hpp"
#include "core/evaluation.hpp"

namespace pipeopt::heuristics {

SpeedScalingResult scale_down_speeds(const core::Problem& problem,
                                     const core::Mapping& mapping,
                                     const core::ConstraintSet& constraints,
                                     const SpeedScalingOptions& options) {
  std::optional<core::BatchEvaluator> owned;
  core::BatchEvaluator& ev =
      options.evaluator ? *options.evaluator : owned.emplace(problem);
  if (options.validate_start) mapping.validate_or_throw(problem);
  const std::uint64_t evals_before = ev.evals();

  core::Metrics metrics = ev.evaluate(mapping);
  if (!constraints.satisfied_by(metrics)) {
    throw std::invalid_argument(
        "scale_down_speeds: the starting mapping violates the constraints");
  }

  SpeedScalingResult result;
  result.energy_before = metrics.energy;
  std::vector<core::IntervalAssignment> current(mapping.intervals().begin(),
                                                mapping.intervals().end());

  for (;;) {
    // Try every single-step mode reduction; keep the one saving the most
    // energy among those that stay feasible. Each trial flips one interval's
    // mode in place (the (app, first) order is untouched) and delta-evaluates
    // just that interval's application against the incumbent base.
    ev.adopt_base(metrics);
    double best_saving = 0.0;
    std::size_t best_interval = current.size();
    core::Metrics best_metrics;
    for (std::size_t i = 0; i < current.size(); ++i) {
      if (current[i].mode == 0) continue;
      --current[i].mode;
      const std::size_t touched = current[i].app;
      const core::Metrics& m = ev.evaluate_delta(current, {&touched, 1});
      ++current[i].mode;
      if (!constraints.satisfied_by(m)) continue;
      const double saving = metrics.energy - m.energy;
      if (saving > best_saving) {
        best_saving = saving;
        best_interval = i;
        best_metrics = m;
      }
    }
    if (best_interval == current.size()) break;  // no feasible reduction left
    --current[best_interval].mode;
    metrics = std::move(best_metrics);
    ++result.steps;
  }

  result.energy_after = metrics.energy;
  result.mapping = core::Mapping(std::move(current));
  result.evals = ev.evals() - evals_before;
  return result;
}

}  // namespace pipeopt::heuristics
