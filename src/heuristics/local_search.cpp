#include "heuristics/local_search.hpp"

#include <stdexcept>

#include "core/eval_batch.hpp"
#include "core/evaluation.hpp"
#include "heuristics/neighborhood.hpp"
#include "util/numeric.hpp"

namespace pipeopt::heuristics {

double goal_value(Goal goal, const core::Metrics& metrics) {
  switch (goal) {
    case Goal::Period: return metrics.max_weighted_period;
    case Goal::Latency: return metrics.max_weighted_latency;
    case Goal::Energy: return metrics.energy;
  }
  return util::kInfinity;
}

LocalSearchResult local_search(const core::Problem& problem,
                               const core::Mapping& start, Goal goal,
                               const core::ConstraintSet& constraints,
                               const LocalSearchOptions& options) {
  std::optional<core::BatchEvaluator> owned;
  core::BatchEvaluator& ev =
      options.evaluator ? *options.evaluator : owned.emplace(problem);
  if (options.validate_start) start.validate_or_throw(problem);
  const std::uint64_t evals_before = ev.evals();

  const core::Metrics& start_metrics = ev.evaluate(start);
  if (!constraints.satisfied_by(start_metrics)) {
    throw std::invalid_argument("local_search: infeasible starting mapping");
  }

  LocalSearchResult result;
  result.mapping = start;
  result.value = goal_value(goal, start_metrics);

  while (result.steps < options.max_steps) {
    if (options.should_stop && options.should_stop()) break;
    ev.bind_base(result.mapping);
    core::Mapping best_neighbour;
    double best_value = result.value;
    bool improved = false;
    for (Neighbour& candidate : neighbour_moves(problem, result.mapping)) {
      const core::Metrics& m =
          ev.evaluate_delta(candidate.mapping, candidate.touched());
      if (!constraints.satisfied_by(m)) continue;
      const double value = goal_value(goal, m);
      if (value < best_value && !util::approx_eq(value, best_value)) {
        best_value = value;
        best_neighbour = std::move(candidate.mapping);
        improved = true;
      }
    }
    if (!improved) break;
    result.mapping = std::move(best_neighbour);
    result.value = best_value;
    ++result.steps;
  }
  result.evals = ev.evals() - evals_before;
  return result;
}

}  // namespace pipeopt::heuristics
