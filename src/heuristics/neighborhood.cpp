#include "heuristics/neighborhood.hpp"

#include <algorithm>
#include <functional>

namespace pipeopt::heuristics {
namespace {

using core::IntervalAssignment;
using core::Mapping;
using core::Problem;

std::vector<std::size_t> free_processors(const Problem& problem,
                                         const Mapping& mapping) {
  std::vector<char> used(problem.platform().processor_count(), 0);
  for (const IntervalAssignment& iv : mapping.intervals()) used[iv.proc] = 1;
  std::vector<std::size_t> free;
  for (std::size_t u = 0; u < used.size(); ++u) {
    if (!used[u]) free.push_back(u);
  }
  return free;
}

/// Fastest free processor, if any.
std::optional<std::size_t> fastest_free(const Problem& problem,
                                        const Mapping& mapping) {
  const auto free = free_processors(problem, mapping);
  if (free.empty()) return std::nullopt;
  return *std::max_element(free.begin(), free.end(), [&](std::size_t a,
                                                         std::size_t b) {
    return problem.platform().processor(a).max_speed() <
           problem.platform().processor(b).max_speed();
  });
}

std::vector<IntervalAssignment> to_vec(const Mapping& m) {
  return {m.intervals().begin(), m.intervals().end()};
}

/// Adjacent interval pairs (same app, consecutive) as index pairs into the
/// mapping's interval list.
std::vector<std::pair<std::size_t, std::size_t>> adjacent_pairs(const Mapping& m) {
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  const auto ivs = m.intervals();
  for (std::size_t i = 0; i + 1 < ivs.size(); ++i) {
    if (ivs[i].app == ivs[i + 1].app && ivs[i].last + 1 == ivs[i + 1].first) {
      pairs.emplace_back(i, i + 1);
    }
  }
  return pairs;
}

/// Clamps a mode index to the target processor's mode range, preserving the
/// speed rank as well as possible.
std::size_t clamp_mode(const Problem& problem, std::size_t proc, std::size_t mode) {
  return std::min(mode, problem.platform().processor(proc).max_mode());
}

enum class MoveKind { Split, Merge, Relocate, Swap, ModeUp, ModeDown };

/// Emit signature: the candidate plus the one or two applications whose
/// intervals the move rewrote (only swaps can touch two).
using EmitMove =
    std::function<void(Mapping, std::size_t, std::optional<std::size_t>)>;

void collect_moves(const Problem& problem, const Mapping& mapping,
                   const EmitMove& emit) {
  const auto ivs = mapping.intervals();
  const auto free = free_processors(problem, mapping);
  const auto fastest = fastest_free(problem, mapping);

  // Splits: cut interval i at every inner point, second half to the fastest
  // free processor (bounds the neighbourhood size).
  if (fastest) {
    for (std::size_t i = 0; i < ivs.size(); ++i) {
      for (std::size_t cut = ivs[i].first; cut < ivs[i].last; ++cut) {
        auto next = to_vec(mapping);
        IntervalAssignment second = next[i];
        next[i].last = cut;
        second.first = cut + 1;
        second.proc = *fastest;
        second.mode = problem.platform().processor(*fastest).max_mode();
        next.push_back(second);
        emit(Mapping(std::move(next)), ivs[i].app, std::nullopt);
      }
    }
  }

  // Merges: drop the boundary between adjacent intervals; keep the faster
  // endpoint processor.
  for (const auto& [i, j] : adjacent_pairs(mapping)) {
    auto next = to_vec(mapping);
    const bool keep_first =
        problem.platform().processor(next[i].proc).max_speed() >=
        problem.platform().processor(next[j].proc).max_speed();
    IntervalAssignment merged = keep_first ? next[i] : next[j];
    merged.first = next[i].first;
    merged.last = next[j].last;
    next[keep_first ? i : j] = merged;
    next.erase(next.begin() + static_cast<std::ptrdiff_t>(keep_first ? j : i));
    emit(Mapping(std::move(next)), merged.app, std::nullopt);
  }

  // Relocations: move interval i to each free processor, at every mode of
  // the target (so an energy-minimizing search can relocate directly onto a
  // slow mode instead of needing a second move).
  for (std::size_t i = 0; i < ivs.size(); ++i) {
    for (std::size_t u : free) {
      const std::size_t modes = problem.platform().processor(u).mode_count();
      for (std::size_t m = 0; m < modes; ++m) {
        auto next = to_vec(mapping);
        next[i].proc = u;
        next[i].mode = m;
        emit(Mapping(std::move(next)), ivs[i].app, std::nullopt);
      }
    }
  }

  // Swaps: exchange processors (and clamped modes) of intervals i < j.
  for (std::size_t i = 0; i < ivs.size(); ++i) {
    for (std::size_t j = i + 1; j < ivs.size(); ++j) {
      auto next = to_vec(mapping);
      std::swap(next[i].proc, next[j].proc);
      std::swap(next[i].mode, next[j].mode);
      next[i].mode = clamp_mode(problem, next[i].proc, next[i].mode);
      next[j].mode = clamp_mode(problem, next[j].proc, next[j].mode);
      emit(Mapping(std::move(next)), ivs[i].app,
           ivs[j].app == ivs[i].app ? std::nullopt
                                    : std::optional<std::size_t>(ivs[j].app));
    }
  }

  // Mode steps.
  for (std::size_t i = 0; i < ivs.size(); ++i) {
    const std::size_t max_mode = problem.platform().processor(ivs[i].proc).max_mode();
    if (ivs[i].mode < max_mode) {
      auto next = to_vec(mapping);
      ++next[i].mode;
      emit(Mapping(std::move(next)), ivs[i].app, std::nullopt);
    }
    if (ivs[i].mode > 0) {
      auto next = to_vec(mapping);
      --next[i].mode;
      emit(Mapping(std::move(next)), ivs[i].app, std::nullopt);
    }
  }
}

}  // namespace

std::vector<Neighbour> neighbour_moves(const Problem& problem,
                                       const Mapping& mapping) {
  std::vector<Neighbour> result;
  collect_moves(problem, mapping,
                [&](Mapping m, std::size_t app_a, std::optional<std::size_t> app_b) {
                  Neighbour nb;
                  nb.mapping = std::move(m);
                  nb.touched_apps[nb.touched_count++] = app_a;
                  if (app_b) nb.touched_apps[nb.touched_count++] = *app_b;
                  result.push_back(std::move(nb));
                });
  return result;
}

std::optional<Neighbour> random_neighbour_move(const Problem& problem,
                                               const Mapping& mapping,
                                               util::Rng& rng) {
  std::vector<Neighbour> all = neighbour_moves(problem, mapping);
  if (all.empty()) return std::nullopt;
  return std::move(all[rng.index(all.size())]);
}

std::vector<Mapping> neighbours(const Problem& problem, const Mapping& mapping) {
  std::vector<Mapping> result;
  collect_moves(problem, mapping,
                [&](Mapping m, std::size_t, std::optional<std::size_t>) {
                  result.push_back(std::move(m));
                });
  return result;
}

std::optional<Mapping> random_neighbour(const Problem& problem,
                                        const Mapping& mapping, util::Rng& rng) {
  auto move = random_neighbour_move(problem, mapping, rng);
  if (!move) return std::nullopt;
  return std::move(move->mapping);
}

}  // namespace pipeopt::heuristics
