#pragma once

/// \file list_heuristics.hpp
/// Constructive one-to-one baselines for the NP-hard one-to-one cells
/// (fully heterogeneous period, heterogeneous-processor latency): classic
/// LPT-style rank matching — heaviest stages onto fastest processors.
/// O(N log N + p log p); no optimality guarantee (that is the point: these
/// are the baselines whose gap against exact search the benches report).

#include <optional>

#include "core/mapping.hpp"
#include "core/problem.hpp"

namespace pipeopt::heuristics {

/// Rank-matching one-to-one mapping: stages sorted by descending compute
/// weight (scaled by W_a), processors by descending maximum speed, matched
/// rank to rank at maximum speed. Returns std::nullopt when p < N.
[[nodiscard]] std::optional<core::Mapping> one_to_one_rank_matching(
    const core::Problem& problem);

}  // namespace pipeopt::heuristics
