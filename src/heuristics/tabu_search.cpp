#include "heuristics/tabu_search.hpp"

#include <deque>
#include <optional>
#include <set>
#include <sstream>

#include "core/eval_batch.hpp"
#include "core/evaluation.hpp"
#include "heuristics/neighborhood.hpp"
#include "util/numeric.hpp"

namespace pipeopt::heuristics {
namespace {

/// Structural signature of a mapping (tabu key): interval boundaries,
/// processors and modes, in canonical order.
std::string signature(const core::Mapping& mapping) {
  std::ostringstream os;
  for (const core::IntervalAssignment& iv : mapping.intervals()) {
    os << iv.app << ':' << iv.first << '-' << iv.last << '@' << iv.proc << '/'
       << iv.mode << ';';
  }
  return os.str();
}

/// Goal value + large penalty for constraint violations: lets the walk
/// traverse infeasible states while steering back.
double score(const core::Problem& problem, const core::Metrics& metrics,
             Goal goal, const core::ConstraintSet& constraints, double scale) {
  double penalty = 0.0;
  const auto add = [&](const std::optional<core::Thresholds>& thresholds,
                       core::Criterion criterion) {
    if (!thresholds) return;
    for (std::size_t a = 0; a < problem.application_count(); ++a) {
      const double value = criterion == core::Criterion::Period
                               ? metrics.per_app[a].period
                               : metrics.per_app[a].latency;
      const double bound = thresholds->bound(a);
      if (std::isfinite(bound) && value > bound) {
        penalty += (value / bound - 1.0);
      }
    }
  };
  add(constraints.period, core::Criterion::Period);
  add(constraints.latency, core::Criterion::Latency);
  if (constraints.energy_budget && metrics.energy > *constraints.energy_budget) {
    penalty += metrics.energy / *constraints.energy_budget - 1.0;
  }
  return goal_value(goal, metrics) + 10.0 * scale * penalty;
}

}  // namespace

TabuResult tabu_search(const core::Problem& problem, const core::Mapping& start,
                       Goal goal, const core::ConstraintSet& constraints,
                       const TabuOptions& options) {
  std::optional<core::BatchEvaluator> owned;
  core::BatchEvaluator& ev =
      options.evaluator ? *options.evaluator : owned.emplace(problem);
  if (options.validate_start) start.validate_or_throw(problem);
  const std::uint64_t evals_before = ev.evals();

  core::Mapping current = start;
  core::Metrics metrics = ev.evaluate(current);
  const double scale = std::max(goal_value(goal, metrics), 1e-9);

  TabuResult result;
  result.value = util::kInfinity;
  if (constraints.satisfied_by(metrics)) {
    result.mapping = current;
    result.value = goal_value(goal, metrics);
  }

  std::deque<std::string> tabu_order;
  std::set<std::string> tabu;
  const auto push_tabu = [&](const std::string& sig) {
    if (!tabu.insert(sig).second) return;
    tabu_order.push_back(sig);
    while (tabu_order.size() > options.tenure) {
      tabu.erase(tabu_order.front());
      tabu_order.pop_front();
    }
  };
  push_tabu(signature(current));

  for (std::size_t it = 0; it < options.iterations; ++it) {
    if (options.should_stop && options.should_stop()) break;
    ev.adopt_base(metrics);
    core::Mapping best_neighbour;
    core::Metrics best_metrics;
    double best_score = util::kInfinity;
    bool found = false;
    for (Neighbour& candidate : neighbour_moves(problem, current)) {
      const std::string sig = signature(candidate.mapping);
      const core::Metrics& m =
          ev.evaluate_delta(candidate.mapping, candidate.touched());
      const double s = score(problem, m, goal, constraints, scale);
      // Aspiration: a tabu move is admissible when it beats the incumbent.
      const bool aspires =
          constraints.satisfied_by(m) && goal_value(goal, m) < result.value;
      if (tabu.contains(sig) && !aspires) continue;
      if (s < best_score) {
        best_score = s;
        best_neighbour = std::move(candidate.mapping);
        best_metrics = m;
        found = true;
      }
    }
    if (!found) break;  // every neighbour tabu: stuck
    current = std::move(best_neighbour);
    metrics = std::move(best_metrics);
    push_tabu(signature(current));
    ++result.moves;
    if (constraints.satisfied_by(metrics) &&
        goal_value(goal, metrics) < result.value) {
      result.mapping = current;
      result.value = goal_value(goal, metrics);
    }
  }
  result.evals = ev.evals() - evals_before;
  return result;
}

}  // namespace pipeopt::heuristics
