#pragma once

/// \file interval_greedy.hpp
/// Polynomial-time constructive heuristic for the NP-hard interval-mapping
/// cells (heterogeneous processors and/or links) — the practical face of the
/// paper's §6 future work.
///
/// Three phases:
///  1. allocate processor counts to applications proportionally to their
///     weighted total work (at least one each);
///  2. give each application its fastest allotted processors and cut its
///     chain so that every interval's compute time (Σw / s) is balanced
///     against its processor's share of the application's total speed;
///  3. run everything at maximum speed (callers wanting energy reduction
///     follow up with speed_scaling / local search).

#include <optional>

#include "core/mapping.hpp"
#include "core/problem.hpp"

namespace pipeopt::heuristics {

/// Builds a feasible interval mapping on any platform class (p >= A
/// required). Returns std::nullopt when p < A.
[[nodiscard]] std::optional<core::Mapping> greedy_interval_mapping(
    const core::Problem& problem);

}  // namespace pipeopt::heuristics
