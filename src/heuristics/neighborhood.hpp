#pragma once

/// \file neighborhood.hpp
/// Shared move set over interval mappings, used by hill-climbing and
/// simulated annealing:
///
///  * split an interval in two (second half onto a free processor),
///  * merge two adjacent intervals (free one processor),
///  * relocate one interval onto a free processor,
///  * swap the processors of two intervals,
///  * raise/lower one interval's speed mode.
///
/// Every move preserves structural validity (tiling, distinct processors).

#include <array>
#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "core/mapping.hpp"
#include "core/problem.hpp"
#include "util/random.hpp"

namespace pipeopt::heuristics {

/// One legal move: the resulting mapping plus the applications whose
/// intervals differ from the source mapping. Every move kind rewrites the
/// intervals of at most two applications (swap; one for all others), which
/// is exactly the touched set `core::BatchEvaluator::evaluate_delta` needs
/// to re-evaluate the candidate in O(affected app).
struct Neighbour {
  core::Mapping mapping;
  std::array<std::size_t, 2> touched_apps{};
  std::size_t touched_count = 0;

  [[nodiscard]] std::span<const std::size_t> touched() const noexcept {
    return {touched_apps.data(), touched_count};
  }
};

/// All neighbours of `mapping` (bounded: splits only target the fastest free
/// processor to keep the neighbourhood polynomial), with touched-app sets.
[[nodiscard]] std::vector<Neighbour> neighbour_moves(const core::Problem& problem,
                                                     const core::Mapping& mapping);

/// One uniformly random move, or std::nullopt when the mapping has no legal
/// move (rare: single interval, no free processors, single mode). Draws the
/// same rng sequence (one index over the full move list) as
/// `random_neighbour` always has, so seeded searches are unchanged.
[[nodiscard]] std::optional<Neighbour> random_neighbour_move(
    const core::Problem& problem, const core::Mapping& mapping, util::Rng& rng);

/// All neighbours of `mapping`, mappings only (wrapper over neighbour_moves).
[[nodiscard]] std::vector<core::Mapping> neighbours(const core::Problem& problem,
                                                    const core::Mapping& mapping);

/// One uniformly random neighbour, mapping only.
[[nodiscard]] std::optional<core::Mapping> random_neighbour(
    const core::Problem& problem, const core::Mapping& mapping, util::Rng& rng);

}  // namespace pipeopt::heuristics
