#pragma once

/// \file neighborhood.hpp
/// Shared move set over interval mappings, used by hill-climbing and
/// simulated annealing:
///
///  * split an interval in two (second half onto a free processor),
///  * merge two adjacent intervals (free one processor),
///  * relocate one interval onto a free processor,
///  * swap the processors of two intervals,
///  * raise/lower one interval's speed mode.
///
/// Every move preserves structural validity (tiling, distinct processors).

#include <optional>
#include <vector>

#include "core/mapping.hpp"
#include "core/problem.hpp"
#include "util/random.hpp"

namespace pipeopt::heuristics {

/// All neighbours of `mapping` (bounded: splits only target the fastest free
/// processor to keep the neighbourhood polynomial).
[[nodiscard]] std::vector<core::Mapping> neighbours(const core::Problem& problem,
                                                    const core::Mapping& mapping);

/// One uniformly random neighbour, or std::nullopt when the mapping has no
/// legal move (rare: single interval, no free processors, single mode).
[[nodiscard]] std::optional<core::Mapping> random_neighbour(
    const core::Problem& problem, const core::Mapping& mapping, util::Rng& rng);

}  // namespace pipeopt::heuristics
