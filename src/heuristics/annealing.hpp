#pragma once

/// \file annealing.hpp
/// Simulated annealing over the shared mapping neighbourhood — the
/// exploration-capable heuristic for the NP-hard tri-criteria problem on
/// heterogeneous multi-modal platforms. Constraint violations are admitted
/// during the walk via a penalty term so the search can cross infeasible
/// ridges, but only feasible states are recorded as incumbents.

#include <cstdint>
#include <functional>
#include <optional>

#include "core/mapping.hpp"
#include "core/objectives.hpp"
#include "core/problem.hpp"
#include "heuristics/local_search.hpp"  // Goal
#include "util/random.hpp"

namespace pipeopt::heuristics {

/// Annealing controls.
struct AnnealingOptions {
  std::size_t iterations = 2000;
  double initial_temperature = 1.0;  ///< relative to the start's goal value
  double cooling = 0.995;            ///< geometric factor per iteration
  double penalty = 10.0;             ///< weight of relative constraint violation
  /// Polled every iteration; returning true ends the walk with the best
  /// feasible incumbent so far (time budgets, cancellation). Null = never.
  std::function<bool()> should_stop;
  /// Shared evaluation workspace; the walk binds its own when null.
  core::BatchEvaluator* evaluator = nullptr;
  /// The walk structurally validates `start` exactly once, up front (see
  /// LocalSearchOptions::validate_start); false skips the re-validation.
  bool validate_start = true;
};

/// Annealing outcome; `value` is +inf when no feasible state was ever seen.
struct AnnealingResult {
  core::Mapping mapping;
  double value = 0.0;
  std::size_t accepted = 0;  ///< accepted moves (diagnostics)
  std::uint64_t evals = 0;   ///< evaluations performed by this walk
};

/// Runs simulated annealing from `start` (need not satisfy the constraints).
[[nodiscard]] AnnealingResult simulated_annealing(
    const core::Problem& problem, const core::Mapping& start, Goal goal,
    const core::ConstraintSet& constraints, util::Rng& rng,
    const AnnealingOptions& options = {});

}  // namespace pipeopt::heuristics
