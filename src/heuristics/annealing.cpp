#include "heuristics/annealing.hpp"

#include <cmath>

#include "core/eval_batch.hpp"
#include "core/evaluation.hpp"
#include "heuristics/neighborhood.hpp"
#include "util/numeric.hpp"

namespace pipeopt::heuristics {
namespace {

/// Relative violation of the constraint set (0 when satisfied): sum over
/// criteria of max(0, value/bound - 1).
double violation(const core::Problem& problem, const core::Metrics& metrics,
                 const core::ConstraintSet& constraints) {
  double total = 0.0;
  auto add = [&](const std::optional<core::Thresholds>& thresholds,
                 core::Criterion criterion) {
    if (!thresholds) return;
    for (std::size_t a = 0; a < problem.application_count(); ++a) {
      const double value = criterion == core::Criterion::Period
                               ? metrics.per_app[a].period
                               : metrics.per_app[a].latency;
      const double bound = thresholds->bound(a);
      if (std::isfinite(bound) && value > bound) total += value / bound - 1.0;
    }
  };
  add(constraints.period, core::Criterion::Period);
  add(constraints.latency, core::Criterion::Latency);
  if (constraints.energy_budget && metrics.energy > *constraints.energy_budget) {
    total += metrics.energy / *constraints.energy_budget - 1.0;
  }
  return total;
}

}  // namespace

AnnealingResult simulated_annealing(const core::Problem& problem,
                                    const core::Mapping& start, Goal goal,
                                    const core::ConstraintSet& constraints,
                                    util::Rng& rng,
                                    const AnnealingOptions& options) {
  std::optional<core::BatchEvaluator> owned;
  core::BatchEvaluator& ev =
      options.evaluator ? *options.evaluator : owned.emplace(problem);
  if (options.validate_start) start.validate_or_throw(problem);
  const std::uint64_t evals_before = ev.evals();

  core::Mapping current = start;
  core::Metrics metrics = ev.evaluate(current);
  const double scale = std::max(goal_value(goal, metrics), 1e-9);
  auto score = [&](const core::Metrics& m) {
    return goal_value(goal, m) / scale +
           options.penalty * violation(problem, m, constraints);
  };
  double current_score = score(metrics);

  AnnealingResult result;
  result.value = util::kInfinity;
  if (constraints.satisfied_by(metrics)) {
    result.mapping = current;
    result.value = goal_value(goal, metrics);
  }

  ev.adopt_base(metrics);
  double temperature = options.initial_temperature;
  for (std::size_t it = 0; it < options.iterations; ++it) {
    if (options.should_stop && options.should_stop()) break;
    auto candidate = random_neighbour_move(problem, current, rng);
    if (!candidate) break;
    const core::Metrics& m =
        ev.evaluate_delta(candidate->mapping, candidate->touched());
    const double cand_score = score(m);
    const double delta = cand_score - current_score;
    if (delta <= 0.0 ||
        rng.uniform(0.0, 1.0) < std::exp(-delta / std::max(temperature, 1e-12))) {
      current = std::move(candidate->mapping);
      current_score = cand_score;
      const bool feasible = constraints.satisfied_by(m);
      const double value = goal_value(goal, m);
      ev.adopt_base(m);  // the candidate just evaluated is the new base
      ++result.accepted;
      if (feasible && value < result.value) {
        result.mapping = current;
        result.value = value;
      }
    }
    temperature *= options.cooling;
  }
  result.evals = ev.evals() - evals_before;
  return result;
}

}  // namespace pipeopt::heuristics
