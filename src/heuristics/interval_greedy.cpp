#include "heuristics/interval_greedy.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

namespace pipeopt::heuristics {
namespace {

using core::IntervalAssignment;
using core::Mapping;
using core::Problem;

}  // namespace

std::optional<Mapping> greedy_interval_mapping(const Problem& problem) {
  const std::size_t A = problem.application_count();
  const std::size_t p = problem.platform().processor_count();
  if (p < A) return std::nullopt;

  // Phase 1: proportional processor counts (floor + largest-remainder),
  // clamped to [1, n_a].
  std::vector<double> demand(A);
  double total_demand = 0.0;
  for (std::size_t a = 0; a < A; ++a) {
    demand[a] = problem.application(a).weight() *
                problem.application(a).total_compute();
    total_demand += demand[a];
  }
  std::vector<std::size_t> count(A, 1);
  std::size_t used = A;
  if (total_demand > 0.0) {
    // Hand out the remaining processors by repeatedly serving the
    // application with the highest demand per allotted processor.
    while (used < p) {
      std::size_t best = A;
      double best_ratio = -1.0;
      for (std::size_t a = 0; a < A; ++a) {
        if (count[a] >= problem.application(a).stage_count()) continue;
        const double ratio = demand[a] / static_cast<double>(count[a]);
        if (ratio > best_ratio) {
          best_ratio = ratio;
          best = a;
        }
      }
      if (best == A) break;  // every application saturated (count == stages)
      ++count[best];
      ++used;
    }
  }

  // Phase 2: fastest processors to the most demanding applications.
  std::vector<std::size_t> order(A);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    return demand[x] / static_cast<double>(count[x]) >
           demand[y] / static_cast<double>(count[y]);
  });
  std::vector<std::size_t> procs_by_speed =
      problem.platform().processors_by_max_speed_desc();

  std::vector<IntervalAssignment> intervals;
  std::size_t next_proc = 0;
  for (std::size_t a : order) {
    const auto& app = problem.application(a);
    const std::size_t q = count[a];
    // This application's processors, fastest first.
    std::vector<std::size_t> mine(procs_by_speed.begin() +
                                      static_cast<std::ptrdiff_t>(next_proc),
                                  procs_by_speed.begin() +
                                      static_cast<std::ptrdiff_t>(next_proc + q));
    next_proc += q;

    double speed_sum = 0.0;
    for (std::size_t u : mine) {
      speed_sum += problem.platform().processor(u).max_speed();
    }
    // Cut the chain so each interval's work matches its processor's share.
    const double total_work = app.total_compute();
    std::size_t first = 0;
    for (std::size_t j = 0; j < q; ++j) {
      const std::size_t u = mine[j];
      const std::size_t remaining_intervals = q - j - 1;
      std::size_t last = first;
      if (remaining_intervals == 0) {
        last = app.stage_count() - 1;
      } else {
        const double target = total_work *
                              problem.platform().processor(u).max_speed() /
                              speed_sum;
        double acc = 0.0;
        // Greedily absorb stages while the interval stays under target and
        // enough stages remain for the other intervals.
        while (last + 1 + remaining_intervals < app.stage_count()) {
          acc += app.compute(last);
          if (acc >= target) break;
          ++last;
        }
      }
      intervals.push_back(
          {a, first, last, u, problem.platform().processor(u).max_mode()});
      first = last + 1;
    }
  }
  return Mapping(std::move(intervals));
}

}  // namespace pipeopt::heuristics
