#pragma once

/// \file local_search.hpp
/// Best-improvement hill climbing over the shared mapping neighbourhood,
/// minimizing any of the three criteria under an arbitrary constraint set.
/// Polynomial per step; used as the mid-tier heuristic on the NP-hard cells
/// (quality between the constructive greedy and simulated annealing).

#include <cstdint>
#include <functional>
#include <optional>

#include "core/mapping.hpp"
#include "core/objectives.hpp"
#include "core/problem.hpp"

namespace pipeopt::core {
class BatchEvaluator;
}

namespace pipeopt::heuristics {

/// Minimization target for the search heuristics.
enum class Goal { Period, Latency, Energy };

/// Goal value of a metrics snapshot (weighted maxima for period/latency).
[[nodiscard]] double goal_value(Goal goal, const core::Metrics& metrics);

/// Search controls.
struct LocalSearchOptions {
  std::size_t max_steps = 200;  ///< cap on accepted improvements
  /// Polled before every step; returning true ends the search with the best
  /// mapping found so far (time budgets, cancellation). Null = never stop.
  std::function<bool()> should_stop;
  /// Shared evaluation workspace; the search binds its own when null. Pass
  /// one per solve so bind-time work and the evals count are shared across
  /// ladder rungs.
  core::BatchEvaluator* evaluator = nullptr;
  /// Validation contract: the search structurally validates `start` exactly
  /// once, up front — never per candidate (candidates come from the
  /// validity-preserving neighbourhood). Callers that already validated the
  /// start (the ladder validates once per solve) pass false to skip it.
  bool validate_start = true;
};

/// Search outcome.
struct LocalSearchResult {
  core::Mapping mapping;
  double value = 0.0;
  std::size_t steps = 0;
  std::uint64_t evals = 0;  ///< evaluations performed by this search
};

/// Hill-climbs from `start` (which must satisfy the constraints). Every
/// accepted step strictly improves the goal while keeping the constraints.
/// \throws std::invalid_argument when the start violates the constraints.
[[nodiscard]] LocalSearchResult local_search(
    const core::Problem& problem, const core::Mapping& start, Goal goal,
    const core::ConstraintSet& constraints = {},
    const LocalSearchOptions& options = {});

}  // namespace pipeopt::heuristics
