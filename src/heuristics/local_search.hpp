#pragma once

/// \file local_search.hpp
/// Best-improvement hill climbing over the shared mapping neighbourhood,
/// minimizing any of the three criteria under an arbitrary constraint set.
/// Polynomial per step; used as the mid-tier heuristic on the NP-hard cells
/// (quality between the constructive greedy and simulated annealing).

#include <functional>
#include <optional>

#include "core/mapping.hpp"
#include "core/objectives.hpp"
#include "core/problem.hpp"

namespace pipeopt::heuristics {

/// Minimization target for the search heuristics.
enum class Goal { Period, Latency, Energy };

/// Goal value of a metrics snapshot (weighted maxima for period/latency).
[[nodiscard]] double goal_value(Goal goal, const core::Metrics& metrics);

/// Search controls.
struct LocalSearchOptions {
  std::size_t max_steps = 200;  ///< cap on accepted improvements
  /// Polled before every step; returning true ends the search with the best
  /// mapping found so far (time budgets, cancellation). Null = never stop.
  std::function<bool()> should_stop;
};

/// Search outcome.
struct LocalSearchResult {
  core::Mapping mapping;
  double value = 0.0;
  std::size_t steps = 0;
};

/// Hill-climbs from `start` (which must satisfy the constraints). Every
/// accepted step strictly improves the goal while keeping the constraints.
/// \throws std::invalid_argument when the start violates the constraints.
[[nodiscard]] LocalSearchResult local_search(
    const core::Problem& problem, const core::Mapping& start, Goal goal,
    const core::ConstraintSet& constraints = {},
    const LocalSearchOptions& options = {});

}  // namespace pipeopt::heuristics
