/// \file bench_table2_multi.cpp
/// Experiment TAB2: reproduces Table 2 (multi-criteria complexity matrix)
/// plus the §5.3.1 uni-modal tri-criteria row, driven end-to-end through
/// the `pipeopt::api` facade.
///
/// Threshold construction per instance: the exhaustive performance optimum
/// scaled by a random slack in [1, 2.5], so constraints genuinely bind on a
/// fraction of the instances. Poly cells issue the plain request and let
/// capability dispatch pick the paper's algorithm (the cell text names the
/// winner), comparing it with the constrained exhaustive oracle; NP-c cells
/// report the exact node count and the gap of the forced heuristic-ladder
/// solver (greedy -> DVFS scaling -> local search -> annealing).

#include <cstdio>
#include <functional>
#include <optional>
#include <string>

#include "api/registry.hpp"
#include "bench_support.hpp"
#include "util/numeric.hpp"
#include "util/table.hpp"

namespace {

using namespace pipeopt;
using bench::CellShape;
using bench::Column;

constexpr int kPolyInstances = 20;
constexpr int kHardInstances = 8;

/// One multi-criteria experiment: thresholds are derived per instance; the
/// runner returns the constrained request or nullopt to skip the instance.
using RequestBuilder = std::function<std::optional<api::SolveRequest>(
    const core::Problem&, util::Rng&)>;

/// Median "nodes" diagnostic of an exact result, when present.
void note_nodes(const api::SolveResult& result, util::Summary& nodes) {
  if (const auto n = bench::diagnostic_value(result, "nodes")) nodes.add(*n);
}

std::string run_cell(std::uint64_t seed, Column column, CellShape shape,
                     bool expect_poly, const RequestBuilder& build) {
  util::Rng rng(seed);
  bench::CellReport report;
  util::Summary nodes;
  bench::DispatchAudit audit;
  const int instances = expect_poly ? kPolyInstances : kHardInstances;
  for (int i = 0; i < instances; ++i) {
    shape.comm = (i % 2 == 0) ? core::CommModel::Overlap
                              : core::CommModel::NoOverlap;
    const auto problem = bench::make_instance(rng, column, shape);
    const auto request = build(problem, rng);
    if (!request) continue;

    auto oracle_request = *request;
    oracle_request.solver = "exact-enumeration";
    const auto oracle = api::solve(problem, oracle_request);
    if (oracle.solved()) note_nodes(oracle, nodes);

    auto algo_request = *request;
    if (!expect_poly) algo_request.solver = "heuristic-ladder";
    const auto algo = api::solve(problem, algo_request);
    if (expect_poly && algo.solved() && !audit.record(algo)) continue;

    if (algo.solved() != oracle.solved()) {
      // Poly cells: a feasibility disagreement is a miss. Hard cells: the
      // ladder failing to find a feasible mapping is expected sometimes.
      if (expect_poly || oracle.solved()) ++report.total;
      continue;
    }
    if (!algo.solved()) continue;  // both infeasible: nothing to compare
    ++report.total;
    report.gap.add(algo.value / oracle.value);
    if (util::approx_eq(algo.value, oracle.value)) ++report.optimal;
  }
  char buf[160];
  if (audit.misrouted > 0) {
    std::snprintf(buf, sizeof(buf), "ROUTING FAILURE: %d escaped poly tier",
                  audit.misrouted);
  } else if (report.total == 0) {
    std::snprintf(buf, sizeof(buf), "(no comparable instances)");
  } else if (expect_poly) {
    std::snprintf(buf, sizeof(buf), "poly[%s]: optimal %s",
                  audit.names().c_str(), report.optimality().c_str());
  } else if (report.gap.empty()) {
    std::snprintf(buf, sizeof(buf), "NP-c: exact med %.0f nodes (heur n/a)",
                  nodes.median());
  } else {
    std::snprintf(buf, sizeof(buf),
                  "NP-c: exact med %.0f nodes; ladder gap med %.3fx (opt %s)",
                  nodes.median(), report.gap.median(),
                  report.optimality().c_str());
  }
  return buf;
}

/// Exhaustive optimum of `objective` over the mapping family, scaled by
/// `slack` — the per-instance threshold generator.
std::optional<double> perf_bound(const core::Problem& problem,
                                 api::MappingKind kind,
                                 api::Objective objective, double slack) {
  api::SolveRequest request;
  request.objective = objective;
  request.kind = kind;
  request.solver = "exact-enumeration";
  const auto best = api::solve(problem, request);
  if (!best.solved()) return std::nullopt;
  return best.value * slack;
}

/// Slack range a threshold is drawn from. Poly cells include 1.0 (the
/// constraint may sit exactly at the optimum — the algorithm must still
/// match the oracle there); NP-c cells use a 1.2 floor so the heuristic is
/// not gapped against thresholds no polynomial method could ever meet.
struct Slack {
  double lo = 1.0;
  double hi = 2.5;
};

/// Builds the cell's request: minimize `objective` over `kind` mappings
/// under thresholds derived from the exhaustive optimum of each bounded
/// criterion, scaled by a random slack.
RequestBuilder make_builder(api::Objective objective, api::MappingKind kind,
                            std::optional<Slack> period_slack,
                            std::optional<Slack> latency_slack) {
  return [=](const core::Problem& problem,
             util::Rng& rng) -> std::optional<api::SolveRequest> {
    api::SolveRequest request;
    request.objective = objective;
    request.kind = kind;
    if (period_slack) {
      const auto bound =
          perf_bound(problem, kind, api::Objective::Period,
                     rng.uniform(period_slack->lo, period_slack->hi));
      if (!bound) return std::nullopt;
      request.constraints.period = core::Thresholds::uniform(problem, *bound);
    }
    if (latency_slack) {
      const auto bound =
          perf_bound(problem, kind, api::Objective::Latency,
                     rng.uniform(latency_slack->lo, latency_slack->hi));
      if (!bound) return std::nullopt;
      request.constraints.latency = core::Thresholds::uniform(problem, *bound);
    }
    return request;
  };
}

}  // namespace

int main() {
  std::puts("=== TAB2: Table 2 — multi-criteria complexity matrix ===");
  std::puts("(all cells via api::solve; poly cells name the dispatched solver)\n");

  CellShape shape;
  shape.applications = 2;
  shape.min_stages = 1;
  shape.max_stages = 3;
  shape.processors = 5;
  shape.modes = 2;

  CellShape one_shape = shape;  // one-to-one rows need p >= N
  one_shape.processors = 6;

  util::Table table({"problem", bench::to_string(Column::FullyHom),
                     bench::to_string(Column::SpecialApp),
                     bench::to_string(Column::CommHom),
                     bench::to_string(Column::FullyHet)});

  // Poly cells draw slack from [1.0, hi]; NP-c cells from [1.2, hi].
  constexpr Slack kPolySlack{1.0, 2.5};
  constexpr Slack kHardSlack{1.2, 2.5};
  constexpr Slack kPolyTriSlack{1.0, 2.0};
  constexpr Slack kHardTriSlack{1.2, 2.0};

  // --- Row 1: Period/Latency, interval (Thms 15-17). ---------------------
  const auto pl = [&](Slack slack) {
    return make_builder(api::Objective::Latency, api::MappingKind::Interval,
                        slack, std::nullopt);
  };
  table.add_row({"Period/Latency interval",
                 run_cell(211, Column::FullyHom, shape, true, pl(kPolySlack)),
                 run_cell(212, Column::SpecialApp, shape, false, pl(kHardSlack)),
                 run_cell(213, Column::CommHom, shape, false, pl(kHardSlack)),
                 run_cell(214, Column::FullyHet, shape, false, pl(kHardSlack))});

  // --- Row 2: Period/Energy, one-to-one (Thm 19 poly; Thm 20 NP-c). ------
  const auto pe_one = [&](Slack slack) {
    return make_builder(api::Objective::Energy, api::MappingKind::OneToOne,
                        slack, std::nullopt);
  };
  table.add_row(
      {"Period/Energy 1-to-1",
       run_cell(221, Column::FullyHom, one_shape, true, pe_one(kPolySlack)),
       run_cell(222, Column::SpecialApp, one_shape, true, pe_one(kPolySlack)),
       run_cell(223, Column::CommHom, one_shape, true, pe_one(kPolySlack)),
       run_cell(224, Column::FullyHet, one_shape, false, pe_one(kHardSlack))});

  // --- Row 3: Period/Energy, interval (Thms 18/21 poly on FH; Thm 22). ---
  const auto pe_interval = [&](Slack slack) {
    return make_builder(api::Objective::Energy, api::MappingKind::Interval,
                        slack, std::nullopt);
  };
  table.add_row(
      {"Period/Energy interval",
       run_cell(231, Column::FullyHom, shape, true, pe_interval(kPolySlack)),
       run_cell(232, Column::SpecialApp, shape, false, pe_interval(kHardSlack)),
       run_cell(233, Column::CommHom, shape, false, pe_interval(kHardSlack)),
       run_cell(234, Column::FullyHet, shape, false, pe_interval(kHardSlack))});

  // --- Rows 4-5: tri-criteria (Thms 23-25 poly uni-modal; Thm 26-27). ----
  const auto tri = [&](Slack slack) {
    return make_builder(api::Objective::Energy, api::MappingKind::Interval,
                        slack, slack);
  };
  CellShape uni = shape;
  uni.modes = 1;
  table.add_row(
      {"P/L/E uni-modal interval",
       run_cell(241, Column::FullyHom, uni, true, tri(kPolyTriSlack)),
       run_cell(242, Column::SpecialApp, uni, false, tri(kHardTriSlack)),
       run_cell(243, Column::CommHom, uni, false, tri(kHardTriSlack)),
       run_cell(244, Column::FullyHet, uni, false, tri(kHardTriSlack))});
  table.add_row(
      {"P/L/E multi-modal interval",
       run_cell(251, Column::FullyHom, shape, false, tri(kHardTriSlack)),
       run_cell(252, Column::SpecialApp, shape, false, tri(kHardTriSlack)),
       run_cell(253, Column::CommHom, shape, false, tri(kHardTriSlack)),
       run_cell(254, Column::FullyHet, shape, false, tri(kHardTriSlack))});

  std::fputs(table.render().c_str(), stdout);
  std::puts("\nPaper's Table 2 verdicts for comparison:");
  std::puts("  Period/Latency (both):   poly | NP-c | NP-c | NP-c");
  std::puts("  Period/Energy 1-to-1:    poly | poly | poly | NP-c");
  std::puts("  Period/Energy interval:  poly | NP-c | NP-c | NP-c");
  std::puts("  P/L/E uni-modal:         poly | NP-c | NP-c | NP-c (§5.3.1)");
  std::puts("  P/L/E multi-modal:       NP-c | NP-c | NP-c | NP-c (Thm 26-27)");
  return 0;
}
