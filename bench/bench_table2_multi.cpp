/// \file bench_table2_multi.cpp
/// Experiment TAB2: reproduces Table 2 (multi-criteria complexity matrix)
/// plus the §5.3.1 uni-modal tri-criteria row.
///
/// Threshold construction per instance: the exhaustive performance optimum
/// scaled by a random slack in [1, 2.5], so constraints genuinely bind on a
/// fraction of the instances. Poly cells compare the paper's algorithm with
/// the constrained exhaustive oracle; NP-c cells report the exact node
/// count and the gap of the polynomial heuristics (DVFS scaling, local
/// search).

#include <cstdio>
#include <functional>
#include <optional>

#include "algorithms/bicriteria_period_latency.hpp"
#include "algorithms/energy_interval_dp.hpp"
#include "algorithms/energy_matching.hpp"
#include "algorithms/tricriteria_unimodal.hpp"
#include "bench_support.hpp"
#include "util/numeric.hpp"
#include "core/evaluation.hpp"
#include "exact/exact_solvers.hpp"
#include "heuristics/interval_greedy.hpp"
#include "heuristics/list_heuristics.hpp"
#include "heuristics/local_search.hpp"
#include "heuristics/speed_scaling.hpp"
#include "util/table.hpp"

namespace {

using namespace pipeopt;
using bench::CellShape;
using bench::Column;

constexpr int kPolyInstances = 20;
constexpr int kHardInstances = 8;

/// One multi-criteria experiment: thresholds are derived per instance; the
/// runner returns {algorithm value, oracle value} or nullopt to skip.
struct CellOutcome {
  std::optional<double> algo;
  std::optional<double> oracle;
  double exact_nodes = 0.0;
};
using CellRunner = std::function<std::optional<CellOutcome>(
    const core::Problem&, util::Rng&)>;

std::string run_cell(std::uint64_t seed, Column column, CellShape shape,
                     bool expect_poly, const CellRunner& runner) {
  util::Rng rng(seed);
  bench::CellReport report;
  util::Summary nodes;
  const int instances = expect_poly ? kPolyInstances : kHardInstances;
  for (int i = 0; i < instances; ++i) {
    shape.comm = (i % 2 == 0) ? core::CommModel::Overlap
                              : core::CommModel::NoOverlap;
    const auto problem = bench::make_instance(rng, column, shape);
    const auto outcome = runner(problem, rng);
    if (!outcome) continue;
    nodes.add(outcome->exact_nodes);
    if (outcome->algo.has_value() != outcome->oracle.has_value()) {
      ++report.total;  // feasibility disagreement counts as a miss
      continue;
    }
    if (!outcome->algo) continue;  // both infeasible: nothing to compare
    ++report.total;
    report.gap.add(*outcome->algo / *outcome->oracle);
    if (util::approx_eq(*outcome->algo, *outcome->oracle)) ++report.optimal;
  }
  char buf[160];
  if (report.total == 0) {
    std::snprintf(buf, sizeof(buf), "(no comparable instances)");
  } else if (expect_poly) {
    std::snprintf(buf, sizeof(buf), "poly: optimal %s",
                  report.optimality().c_str());
  } else if (report.gap.empty()) {
    // Every comparable instance was a feasibility disagreement (the
    // heuristic could not find a feasible start): exact evidence only.
    std::snprintf(buf, sizeof(buf), "NP-c: exact med %.0f nodes (heur n/a)",
                  nodes.median());
  } else {
    std::snprintf(buf, sizeof(buf),
                  "NP-c: exact med %.0f nodes; heur gap med %.3fx (opt %s)",
                  nodes.median(), report.gap.median(),
                  report.optimality().c_str());
  }
  return buf;
}

/// Shared threshold helper: exhaustive optimum of `objective` over interval
/// (or one-to-one) mappings, scaled by slack.
std::optional<double> perf_bound(const core::Problem& problem,
                                 exact::MappingKind kind,
                                 exact::Objective objective, double slack) {
  exact::EnumerationOptions options;
  options.kind = kind;
  const auto best = exact::exact_minimize(problem, options, objective);
  if (!best) return std::nullopt;
  return best->value * slack;
}

}  // namespace

int main() {
  std::puts("=== TAB2: Table 2 — multi-criteria complexity matrix ===\n");

  CellShape shape;
  shape.applications = 2;
  shape.min_stages = 1;
  shape.max_stages = 3;
  shape.processors = 5;
  shape.modes = 2;

  CellShape one_shape = shape;  // one-to-one rows need p >= N
  one_shape.processors = 6;

  util::Table table({"problem", bench::to_string(Column::FullyHom),
                     bench::to_string(Column::SpecialApp),
                     bench::to_string(Column::CommHom),
                     bench::to_string(Column::FullyHet)});

  // --- Row 1: Period/Latency, interval (Thms 15-17). ---------------------
  const CellRunner pl_poly = [&](const core::Problem& problem, util::Rng& rng)
      -> std::optional<CellOutcome> {
    const auto bound = perf_bound(problem, exact::MappingKind::Interval,
                                  exact::Objective::Period,
                                  rng.uniform(1.0, 2.5));
    if (!bound) return std::nullopt;
    const auto bounds = core::Thresholds::uniform(problem, *bound);
    CellOutcome outcome;
    if (const auto s =
            algorithms::multi_min_latency_under_period(problem, bounds)) {
      outcome.algo = s->value;
    }
    core::ConstraintSet cs;
    cs.period = bounds;
    exact::EnumerationOptions options;
    options.kind = exact::MappingKind::Interval;
    if (const auto o = exact::exact_minimize(problem, options,
                                             exact::Objective::Latency, cs)) {
      outcome.oracle = o->value;
      outcome.exact_nodes = static_cast<double>(o->stats.nodes);
    }
    return outcome;
  };
  const CellRunner pl_hard = [&](const core::Problem& problem, util::Rng& rng)
      -> std::optional<CellOutcome> {
    const auto bound = perf_bound(problem, exact::MappingKind::Interval,
                                  exact::Objective::Period,
                                  rng.uniform(1.2, 2.5));
    if (!bound) return std::nullopt;
    const auto bounds = core::Thresholds::uniform(problem, *bound);
    core::ConstraintSet cs;
    cs.period = bounds;
    CellOutcome outcome;
    exact::EnumerationOptions options;
    options.kind = exact::MappingKind::Interval;
    const auto o =
        exact::exact_minimize(problem, options, exact::Objective::Latency, cs);
    if (!o) return std::nullopt;
    outcome.oracle = o->value;
    outcome.exact_nodes = static_cast<double>(o->stats.nodes);
    // Heuristic: greedy construction + latency-goal local search from a
    // feasible start (the oracle's mapping perturbed is not available to a
    // real user, so start from greedy; skip when greedy is infeasible).
    if (const auto start = heuristics::greedy_interval_mapping(problem)) {
      const auto metrics = core::evaluate(problem, *start);
      if (cs.satisfied_by(metrics)) {
        outcome.algo =
            heuristics::local_search(problem, *start, heuristics::Goal::Latency,
                                     cs)
                .value;
      }
    }
    return outcome;
  };
  table.add_row({"Period/Latency interval",
                 run_cell(211, Column::FullyHom, shape, true, pl_poly),
                 run_cell(212, Column::SpecialApp, shape, false, pl_hard),
                 run_cell(213, Column::CommHom, shape, false, pl_hard),
                 run_cell(214, Column::FullyHet, shape, false, pl_hard)});

  // --- Row 2: Period/Energy, one-to-one (Thm 19 poly; Thm 20 NP-c). ------
  const CellRunner pe_matching = [&](const core::Problem& problem,
                                     util::Rng& rng)
      -> std::optional<CellOutcome> {
    const auto bound = perf_bound(problem, exact::MappingKind::OneToOne,
                                  exact::Objective::Period,
                                  rng.uniform(1.0, 2.5));
    if (!bound) return std::nullopt;
    const auto bounds = core::Thresholds::uniform(problem, *bound);
    CellOutcome outcome;
    if (const auto s =
            algorithms::one_to_one_min_energy_under_period(problem, bounds)) {
      outcome.algo = s->value;
    }
    if (const auto o = exact::exact_min_energy_under_period(
            problem, exact::MappingKind::OneToOne, bounds)) {
      outcome.oracle = o->value;
      outcome.exact_nodes = static_cast<double>(o->stats.nodes);
    }
    return outcome;
  };
  const CellRunner pe_one_hard = [&](const core::Problem& problem,
                                     util::Rng& rng)
      -> std::optional<CellOutcome> {
    const auto bound = perf_bound(problem, exact::MappingKind::OneToOne,
                                  exact::Objective::Period,
                                  rng.uniform(1.2, 2.5));
    if (!bound) return std::nullopt;
    const auto bounds = core::Thresholds::uniform(problem, *bound);
    CellOutcome outcome;
    const auto o = exact::exact_min_energy_under_period(
        problem, exact::MappingKind::OneToOne, bounds);
    if (!o) return std::nullopt;
    outcome.oracle = o->value;
    outcome.exact_nodes = static_cast<double>(o->stats.nodes);
    // Heuristic: rank matching at max speed + DVFS downscaling.
    if (const auto start = heuristics::one_to_one_rank_matching(problem)) {
      core::ConstraintSet cs;
      cs.period = bounds;
      const auto metrics = core::evaluate(problem, *start);
      if (cs.satisfied_by(metrics)) {
        outcome.algo =
            heuristics::scale_down_speeds(problem, *start, cs).energy_after;
      }
    }
    return outcome;
  };
  table.add_row({"Period/Energy 1-to-1",
                 run_cell(221, Column::FullyHom, one_shape, true, pe_matching),
                 run_cell(222, Column::SpecialApp, one_shape, true, pe_matching),
                 run_cell(223, Column::CommHom, one_shape, true, pe_matching),
                 run_cell(224, Column::FullyHet, one_shape, false, pe_one_hard)});

  // --- Row 3: Period/Energy, interval (Thms 18/21 poly on FH; Thm 22). ---
  const CellRunner pe_interval_poly = [&](const core::Problem& problem,
                                          util::Rng& rng)
      -> std::optional<CellOutcome> {
    const auto bound = perf_bound(problem, exact::MappingKind::Interval,
                                  exact::Objective::Period,
                                  rng.uniform(1.0, 2.5));
    if (!bound) return std::nullopt;
    const auto bounds = core::Thresholds::uniform(problem, *bound);
    CellOutcome outcome;
    if (const auto s =
            algorithms::interval_min_energy_under_period(problem, bounds)) {
      outcome.algo = s->value;
    }
    if (const auto o = exact::exact_min_energy_under_period(
            problem, exact::MappingKind::Interval, bounds)) {
      outcome.oracle = o->value;
      outcome.exact_nodes = static_cast<double>(o->stats.nodes);
    }
    return outcome;
  };
  const CellRunner pe_interval_hard = [&](const core::Problem& problem,
                                          util::Rng& rng)
      -> std::optional<CellOutcome> {
    const auto bound = perf_bound(problem, exact::MappingKind::Interval,
                                  exact::Objective::Period,
                                  rng.uniform(1.2, 2.5));
    if (!bound) return std::nullopt;
    const auto bounds = core::Thresholds::uniform(problem, *bound);
    CellOutcome outcome;
    const auto o = exact::exact_min_energy_under_period(
        problem, exact::MappingKind::Interval, bounds);
    if (!o) return std::nullopt;
    outcome.oracle = o->value;
    outcome.exact_nodes = static_cast<double>(o->stats.nodes);
    core::ConstraintSet cs;
    cs.period = bounds;
    if (const auto start = heuristics::greedy_interval_mapping(problem)) {
      const auto metrics = core::evaluate(problem, *start);
      if (cs.satisfied_by(metrics)) {
        const auto scaled = heuristics::scale_down_speeds(problem, *start, cs);
        outcome.algo = heuristics::local_search(problem, scaled.mapping,
                                                heuristics::Goal::Energy, cs)
                           .value;
      }
    }
    return outcome;
  };
  table.add_row(
      {"Period/Energy interval",
       run_cell(231, Column::FullyHom, shape, true, pe_interval_poly),
       run_cell(232, Column::SpecialApp, shape, false, pe_interval_hard),
       run_cell(233, Column::CommHom, shape, false, pe_interval_hard),
       run_cell(234, Column::FullyHet, shape, false, pe_interval_hard)});

  // --- Row 4: tri-criteria, uni-modal (Thms 23-25). ----------------------
  CellShape uni = shape;
  uni.modes = 1;
  const CellRunner tri_uni = [&](const core::Problem& problem, util::Rng& rng)
      -> std::optional<CellOutcome> {
    const auto t_bound = perf_bound(problem, exact::MappingKind::Interval,
                                    exact::Objective::Period,
                                    rng.uniform(1.0, 2.0));
    const auto l_bound = perf_bound(problem, exact::MappingKind::Interval,
                                    exact::Objective::Latency,
                                    rng.uniform(1.0, 2.0));
    if (!t_bound || !l_bound) return std::nullopt;
    const auto periods = core::Thresholds::uniform(problem, *t_bound);
    const auto latencies = core::Thresholds::uniform(problem, *l_bound);
    CellOutcome outcome;
    if (const auto s = algorithms::interval_min_energy_tricriteria(
            problem, periods, latencies)) {
      outcome.algo = s->value;
    }
    if (const auto o = exact::exact_min_energy_tricriteria(
            problem, exact::MappingKind::Interval, periods, latencies)) {
      outcome.oracle = o->value;
      outcome.exact_nodes = static_cast<double>(o->stats.nodes);
    }
    return outcome;
  };
  const CellRunner tri_uni_hard = [&](const core::Problem& problem,
                                      util::Rng& rng)
      -> std::optional<CellOutcome> {
    const auto t_bound = perf_bound(problem, exact::MappingKind::Interval,
                                    exact::Objective::Period,
                                    rng.uniform(1.2, 2.0));
    const auto l_bound = perf_bound(problem, exact::MappingKind::Interval,
                                    exact::Objective::Latency,
                                    rng.uniform(1.2, 2.0));
    if (!t_bound || !l_bound) return std::nullopt;
    const auto periods = core::Thresholds::uniform(problem, *t_bound);
    const auto latencies = core::Thresholds::uniform(problem, *l_bound);
    CellOutcome outcome;
    const auto o = exact::exact_min_energy_tricriteria(
        problem, exact::MappingKind::Interval, periods, latencies);
    if (!o) return std::nullopt;
    outcome.oracle = o->value;
    outcome.exact_nodes = static_cast<double>(o->stats.nodes);
    core::ConstraintSet cs;
    cs.period = periods;
    cs.latency = latencies;
    if (const auto start = heuristics::greedy_interval_mapping(problem)) {
      const auto metrics = core::evaluate(problem, *start);
      if (cs.satisfied_by(metrics)) {
        outcome.algo =
            heuristics::scale_down_speeds(problem, *start, cs).energy_after;
      }
    }
    return outcome;
  };
  table.add_row({"P/L/E uni-modal interval",
                 run_cell(241, Column::FullyHom, uni, true, tri_uni),
                 run_cell(242, Column::SpecialApp, uni, false, tri_uni_hard),
                 run_cell(243, Column::CommHom, uni, false, tri_uni_hard),
                 run_cell(244, Column::FullyHet, uni, false, tri_uni_hard)});

  // --- Row 5: tri-criteria, multi-modal — NP-hard even on FH (Thm 26). ---
  table.add_row({"P/L/E multi-modal interval",
                 run_cell(251, Column::FullyHom, shape, false, tri_uni_hard),
                 run_cell(252, Column::SpecialApp, shape, false, tri_uni_hard),
                 run_cell(253, Column::CommHom, shape, false, tri_uni_hard),
                 run_cell(254, Column::FullyHet, shape, false, tri_uni_hard)});

  std::fputs(table.render().c_str(), stdout);
  std::puts("\nPaper's Table 2 verdicts for comparison:");
  std::puts("  Period/Latency (both):   poly | NP-c | NP-c | NP-c");
  std::puts("  Period/Energy 1-to-1:    poly | poly | poly | NP-c");
  std::puts("  Period/Energy interval:  poly | NP-c | NP-c | NP-c");
  std::puts("  P/L/E uni-modal:         poly | NP-c | NP-c | NP-c (§5.3.1)");
  std::puts("  P/L/E multi-modal:       NP-c | NP-c | NP-c | NP-c (Thm 26-27)");
  return 0;
}
