#pragma once

/// \file bench_support.hpp
/// Shared helpers for the table-reproduction benches: per-cell instance
/// streams for the paper's platform taxonomy, gap statistics and wall-clock
/// medians.

#include <cstdio>
#include <optional>
#include <set>
#include <string>

#include "api/registry.hpp"
#include "api/result.hpp"
#include "gen/random_instances.hpp"
#include "util/numeric.hpp"
#include "util/stats.hpp"
#include "util/timing.hpp"

namespace pipeopt::bench {

/// The four platform columns of Tables 1 and 2.
enum class Column {
  FullyHom,    ///< proc-hom, com-hom
  SpecialApp,  ///< proc-het, hom pipelines, no communication
  CommHom,     ///< proc-het, com-hom
  FullyHet     ///< proc-het, com-het
};

inline const char* to_string(Column c) {
  switch (c) {
    case Column::FullyHom: return "proc-hom/com-hom";
    case Column::SpecialApp: return "special-app";
    case Column::CommHom: return "proc-het/com-hom";
    case Column::FullyHet: return "com-het";
  }
  return "?";
}

/// Instance shape used by the cell benches.
struct CellShape {
  std::size_t applications = 2;
  std::size_t min_stages = 1;
  std::size_t max_stages = 3;
  std::size_t processors = 6;
  std::size_t modes = 1;
  core::CommModel comm = core::CommModel::Overlap;
};

/// Draws one random instance for a column.
inline core::Problem make_instance(util::Rng& rng, Column column,
                                   const CellShape& shape) {
  gen::ProblemShape ps;
  ps.applications = shape.applications;
  ps.processors = shape.processors;
  ps.app.min_stages = shape.min_stages;
  ps.app.max_stages = shape.max_stages;
  ps.platform.modes = shape.modes;
  ps.comm = shape.comm;
  switch (column) {
    case Column::FullyHom:
      ps.platform_class = core::PlatformClass::FullyHomogeneous;
      break;
    case Column::SpecialApp:
      ps.platform_class = core::PlatformClass::CommHomogeneous;
      ps.special_app = true;
      break;
    case Column::CommHom:
      ps.platform_class = core::PlatformClass::CommHomogeneous;
      break;
    case Column::FullyHet:
      ps.platform_class = core::PlatformClass::FullyHeterogeneous;
      break;
  }
  return gen::random_problem(rng, ps);
}

/// Outcome of a polynomial-vs-exact cell experiment.
struct CellReport {
  int optimal = 0;        ///< instances where the algorithm hit the optimum
  int total = 0;          ///< instances compared
  util::Summary algo_us;  ///< algorithm wall-clock (microseconds)
  util::Summary gap;      ///< heuristic/algorithm value ÷ optimum

  [[nodiscard]] std::string optimality() const {
    return std::to_string(optimal) + "/" + std::to_string(total);
  }
};

/// First diagnostic named `key` of a facade result, parsed as a number;
/// nullopt when absent or non-numeric.
inline std::optional<double> diagnostic_value(const api::SolveResult& result,
                                              const char* key) {
  for (const auto& [k, v] : result.diagnostics) {
    if (k == key) return util::parse_number<double>(v);
  }
  return std::nullopt;
}

/// Routing audit for the cells the paper proves polynomial: every distinct
/// auto-dispatched winner is collected (instances alternate communication
/// models, and per-model routing differences must stay visible), and a
/// winner escaping the Polynomial tier counts as a routing failure.
struct DispatchAudit {
  std::set<std::string> dispatched;
  int misrouted = 0;

  /// Records the winner of one solved auto-dispatch result; false (and a
  /// routing failure) when it is not a Polynomial-tier solver.
  bool record(const api::SolveResult& result) {
    const api::Solver* winner = api::default_registry().find(result.solver);
    if (winner == nullptr || winner->info().tier != api::CostTier::Polynomial) {
      ++misrouted;
      return false;
    }
    dispatched.insert(result.solver);
    return true;
  }

  /// Comma-joined winner names for the cell text.
  [[nodiscard]] std::string names() const {
    std::string joined;
    for (const auto& name : dispatched) {
      if (!joined.empty()) joined += ",";
      joined += name;
    }
    return joined;
  }
};

}  // namespace pipeopt::bench
