/// \file bench_eval_hot_path.cpp
/// Experiment EVAL: the evaluation hot path before and after the SoA
/// batch/delta rework. Three measurements, every one cross-checked
/// bit-identical (exact double equality — the contract of
/// core::BatchEvaluator) before any clock starts:
///
///  1. **Neighborhood sweep** — every move of `heuristics::neighbour_moves`
///     on multi-application instances, evaluated three ways: the scalar
///     `core::evaluate` object-graph walk (the pre-PR hot path), the SoA
///     full evaluation, and the incremental delta evaluation the searches
///     now use (recompute touched apps only). Headline: delta evals/sec ÷
///     scalar evals/sec, PR gate >= 3x.
///  2. **Enumeration leaves** — the exact tier's per-leaf cost: Mapping
///     construction + `core::evaluate` (before) vs span evaluation on the
///     bound workspace (after).
///  3. **Branch-and-bound nodes/sec** — the identical search driven by
///     scalar object-graph lookups vs the bind-once SoA tables, over the
///     Table 1/2 platform columns; values and node counts must match
///     exactly.
///
/// `--quick` shrinks rounds/instances for the ci.sh smoke stage (the
/// bit-identity gate still applies; the 3x speedup gate is only enforced in
/// full runs, where timings are stable). `--json PATH` writes the numbers
/// as BENCH_eval.json for trend tracking.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_support.hpp"
#include "core/eval_batch.hpp"
#include "core/evaluation.hpp"
#include "exact/branch_and_bound.hpp"
#include "exact/enumeration.hpp"
#include "gen/random_instances.hpp"
#include "heuristics/interval_greedy.hpp"
#include "heuristics/neighborhood.hpp"
#include "util/table.hpp"
#include "util/timing.hpp"

namespace {

using namespace pipeopt;
using bench::CellShape;
using bench::Column;

/// Exact comparison — any differing bit is a contract violation.
bool same_metrics(const core::Metrics& a, const core::Metrics& b) {
  if (a.per_app.size() != b.per_app.size()) return false;
  for (std::size_t i = 0; i < a.per_app.size(); ++i) {
    if (a.per_app[i].period != b.per_app[i].period) return false;
    if (a.per_app[i].latency != b.per_app[i].latency) return false;
  }
  return a.max_weighted_period == b.max_weighted_period &&
         a.max_weighted_latency == b.max_weighted_latency &&
         a.energy == b.energy;
}

/// One neighborhood workload: a start mapping and its full move list.
struct Workload {
  core::Problem problem;
  core::Mapping start;
  std::vector<heuristics::Neighbour> moves;
};

std::vector<Workload> make_neighborhood_workloads(int instances) {
  // Four applications: a move touches at most two, so the delta path skips
  // at least half the work — the regime the searches actually run in.
  std::vector<Workload> workloads;
  util::Rng rng(20260808);
  CellShape shape;
  shape.applications = 4;
  shape.min_stages = 3;
  shape.max_stages = 5;
  shape.processors = 10;
  shape.modes = 2;
  const Column columns[] = {Column::FullyHom, Column::CommHom,
                            Column::FullyHet};
  for (int i = 0; i < instances; ++i) {
    shape.comm = (i % 2 == 0) ? core::CommModel::Overlap
                              : core::CommModel::NoOverlap;
    core::Problem problem =
        bench::make_instance(rng, columns[i % 3], shape);
    auto start = heuristics::greedy_interval_mapping(problem);
    if (!start) continue;
    auto moves = heuristics::neighbour_moves(problem, *start);
    workloads.push_back(
        {std::move(problem), std::move(*start), std::move(moves)});
  }
  return workloads;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--json PATH]\n", argv[0]);
      return 2;
    }
  }

  const int instances = quick ? 4 : 12;
  const int rounds = quick ? 20 : 200;
  std::printf("EVAL: hot-path throughput, %d instance(s) x %d round(s)%s\n\n",
              instances, rounds, quick ? " (quick)" : "");

  // --- 1. Neighborhood sweep: scalar vs batch vs delta. ---------------------
  const std::vector<Workload> workloads = make_neighborhood_workloads(instances);
  std::size_t total_moves = 0;
  for (const Workload& w : workloads) total_moves += w.moves.size();
  if (total_moves == 0) {
    std::fprintf(stderr, "no neighborhood moves generated\n");
    return 1;
  }

  // Untimed verification pass: every move, all three paths, exact equality.
  std::size_t mismatches = 0;
  for (const Workload& w : workloads) {
    core::BatchEvaluator evaluator(w.problem);
    evaluator.bind_base(w.start);
    for (const auto& move : w.moves) {
      const core::Metrics scalar = core::evaluate(w.problem, move.mapping, false);
      if (!same_metrics(scalar, evaluator.evaluate(move.mapping))) ++mismatches;
      if (!same_metrics(scalar,
                        evaluator.evaluate_delta(move.mapping, move.touched()))) {
        ++mismatches;
      }
    }
  }
  if (mismatches != 0) {
    std::printf("BIT-IDENTITY FAILED: %zu evaluations diverged from the "
                "scalar path\n", mismatches);
    return 1;
  }

  double sink = 0.0;  // defeat dead-code elimination
  const util::Stopwatch scalar_watch;
  for (int r = 0; r < rounds; ++r) {
    for (const Workload& w : workloads) {
      for (const auto& move : w.moves) {
        sink += core::evaluate(w.problem, move.mapping, false).max_weighted_period;
      }
    }
  }
  const double scalar_s = scalar_watch.elapsed_seconds();

  double batch_s = 0.0;
  double delta_s = 0.0;
  {
    // Bind-once evaluators outside the clock (one per problem, as the
    // executor holds them); the timed region is evaluation only.
    std::vector<core::BatchEvaluator> evaluators;
    evaluators.reserve(workloads.size());
    for (const Workload& w : workloads) evaluators.emplace_back(w.problem);

    const util::Stopwatch batch_watch;
    for (int r = 0; r < rounds; ++r) {
      for (std::size_t i = 0; i < workloads.size(); ++i) {
        for (const auto& move : workloads[i].moves) {
          sink += evaluators[i].evaluate(move.mapping).max_weighted_period;
        }
      }
    }
    batch_s = batch_watch.elapsed_seconds();

    for (std::size_t i = 0; i < workloads.size(); ++i) {
      evaluators[i].bind_base(workloads[i].start);
    }
    const util::Stopwatch delta_watch;
    for (int r = 0; r < rounds; ++r) {
      for (std::size_t i = 0; i < workloads.size(); ++i) {
        for (const auto& move : workloads[i].moves) {
          sink += evaluators[i]
                      .evaluate_delta(move.mapping, move.touched())
                      .max_weighted_period;
        }
      }
    }
    delta_s = delta_watch.elapsed_seconds();
  }

  const double evals = static_cast<double>(total_moves) * rounds;
  const double scalar_rate = evals / scalar_s;
  const double batch_rate = evals / batch_s;
  const double delta_rate = evals / delta_s;
  const double delta_speedup = delta_rate / scalar_rate;

  util::Table table({"path", "wall", "evals/s", "vs scalar"});
  const auto row = [&](const char* path, double seconds) {
    table.add_row({path, util::format_double(seconds, 4) + "s",
                   util::format_double(evals / seconds, 0),
                   util::format_double((evals / seconds) / scalar_rate, 2) + "x"});
  };
  row("scalar core::evaluate", scalar_s);
  row("SoA full (evaluate)", batch_s);
  row("SoA delta (evaluate_delta)", delta_s);
  std::fputs(table.render().c_str(), stdout);
  std::printf("\n%zu moves/sweep, delta speedup %.1fx — gate >= 3x: %s\n\n",
              total_moves, delta_speedup,
              delta_speedup >= 3.0 ? "PASS" : (quick ? "SKIP (quick)" : "FAIL"));

  // --- 2. Enumeration leaves: Mapping+evaluate vs span on the workspace. ---
  double leaf_before_rate = 0.0;
  double leaf_after_rate = 0.0;
  {
    util::Rng rng(7);
    CellShape shape;
    shape.applications = 2;
    shape.min_stages = 3;
    shape.max_stages = 4;
    shape.processors = 7;
    shape.modes = 2;
    const core::Problem problem =
        bench::make_instance(rng, Column::CommHom, shape);
    exact::EnumerationOptions options;
    options.kind = exact::MappingKind::Interval;
    options.enumerate_modes = true;
    options.node_limit = quick ? 400'000 : 4'000'000;

    std::size_t leaves = 0;
    const util::Stopwatch before_watch;
    try {
      exact::enumerate_mappings(
          problem, options,
          [&](std::span<const core::IntervalAssignment> ivs) {
            ++leaves;
            const core::Mapping mapping(
                std::vector<core::IntervalAssignment>(ivs.begin(), ivs.end()));
            sink += core::evaluate(problem, mapping, false).max_weighted_period;
          });
    } catch (const exact::SearchLimitExceeded&) {
    }
    const double before_s = before_watch.elapsed_seconds();

    core::BatchEvaluator evaluator(problem);
    std::size_t leaves_after = 0;
    const util::Stopwatch after_watch;
    try {
      exact::enumerate_mappings(
          problem, options,
          [&](std::span<const core::IntervalAssignment> ivs) {
            ++leaves_after;
            sink += evaluator.evaluate(ivs).max_weighted_period;
          });
    } catch (const exact::SearchLimitExceeded&) {
    }
    const double after_s = after_watch.elapsed_seconds();

    leaf_before_rate = static_cast<double>(leaves) / before_s;
    leaf_after_rate = static_cast<double>(leaves_after) / after_s;
    std::printf("enumeration leaves: %zu leaves — before %.0f/s (Mapping + "
                "core::evaluate), after %.0f/s (span on workspace), %.1fx\n\n",
                leaves, leaf_before_rate, leaf_after_rate,
                leaf_after_rate / leaf_before_rate);
  }

  // --- 3. Branch-and-bound nodes/sec: scalar tables vs SoA tables. ----------
  double bb_scalar_rate = 0.0;
  double bb_soa_rate = 0.0;
  bool bb_identical = true;
  {
    util::Rng rng(20260108);
    CellShape shape;
    shape.applications = 2;
    shape.min_stages = quick ? 3 : 4;
    shape.max_stages = quick ? 4 : 6;
    shape.processors = quick ? 7 : 8;
    std::vector<core::Problem> grid;
    for (const Column column : {Column::FullyHom, Column::SpecialApp,
                                Column::CommHom, Column::FullyHet}) {
      for (int i = 0; i < (quick ? 1 : 3); ++i) {
        shape.comm = (i % 2 == 0) ? core::CommModel::Overlap
                                  : core::CommModel::NoOverlap;
        grid.push_back(bench::make_instance(rng, column, shape));
      }
    }

    std::uint64_t nodes = 0;
    const util::Stopwatch scalar_bb_watch;
    std::vector<std::optional<exact::ExactResult>> scalar_results;
    for (const core::Problem& problem : grid) {
      auto result = exact::branch_bound_min_period_scalar(
          problem, exact::MappingKind::Interval);
      if (result) nodes += result->stats.nodes;
      scalar_results.push_back(std::move(result));
    }
    const double scalar_bb_s = scalar_bb_watch.elapsed_seconds();

    std::uint64_t soa_nodes = 0;
    const util::Stopwatch soa_bb_watch;
    std::vector<std::optional<exact::ExactResult>> soa_results;
    for (const core::Problem& problem : grid) {
      auto result =
          exact::branch_bound_min_period(problem, exact::MappingKind::Interval);
      if (result) soa_nodes += result->stats.nodes;
      soa_results.push_back(std::move(result));
    }
    const double soa_bb_s = soa_bb_watch.elapsed_seconds();

    for (std::size_t i = 0; i < grid.size(); ++i) {
      const auto& a = scalar_results[i];
      const auto& b = soa_results[i];
      if (a.has_value() != b.has_value()) bb_identical = false;
      if (a && b &&
          (a->value != b->value || a->stats.nodes != b->stats.nodes ||
           a->stats.complete != b->stats.complete)) {
        bb_identical = false;
      }
    }
    if (!bb_identical || nodes != soa_nodes) {
      std::printf("BIT-IDENTITY FAILED: branch-and-bound diverged between "
                  "lookup paths\n");
      return 1;
    }

    bb_scalar_rate = static_cast<double>(nodes) / scalar_bb_s;
    bb_soa_rate = static_cast<double>(soa_nodes) / soa_bb_s;
    std::printf("branch-and-bound (%zu Table 1/2 cells, %llu nodes): scalar "
                "tables %.0f nodes/s, SoA tables %.0f nodes/s, %.2fx\n",
                grid.size(), static_cast<unsigned long long>(nodes),
                bb_scalar_rate, bb_soa_rate, bb_soa_rate / bb_scalar_rate);
  }

  std::printf("(sink %.3g)\n", sink);

  if (!json_path.empty()) {
    std::FILE* out = std::fopen(json_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(
        out,
        "{\"bench\":\"eval_hot_path\",\"quick\":%s,\"bit_identity\":\"pass\","
        "\"neighborhood\":{\"scalar_evals_per_sec\":%.0f,"
        "\"batch_evals_per_sec\":%.0f,\"delta_evals_per_sec\":%.0f,"
        "\"delta_speedup\":%.2f},"
        "\"enumeration\":{\"leaf_evals_per_sec_before\":%.0f,"
        "\"leaf_evals_per_sec_after\":%.0f},"
        "\"branch_bound\":{\"scalar_nodes_per_sec\":%.0f,"
        "\"soa_nodes_per_sec\":%.0f}}\n",
        quick ? "true" : "false", scalar_rate, batch_rate, delta_rate,
        delta_speedup, leaf_before_rate, leaf_after_rate, bb_scalar_rate,
        bb_soa_rate);
    std::fclose(out);
    std::printf("wrote %s\n", json_path.c_str());
  }

  // The speedup gate needs stable timings; quick mode gates identity only.
  if (!quick && delta_speedup < 3.0) return 1;
  return 0;
}
