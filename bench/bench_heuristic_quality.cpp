/// \file bench_heuristic_quality.cpp
/// Experiment HEUR: quality/runtime ladder of the polynomial heuristics on
/// the NP-hard cells — the paper's §6 future work, quantified. Every rung
/// is driven through the `pipeopt::api` facade with a forced solver name,
/// so this bench doubles as an end-to-end exercise of the registry: the
/// numbers it reports are exactly what `pipeopt solve --solver <name>`
/// produces. For each regime the table reports median gap to the exact
/// optimum and median runtime, at toy scale (where exact is available) and
/// at medium scale (runtime only — exact is unreachable there, which is
/// the point).

#include <algorithm>
#include <cstdio>
#include <string>

#include "api/registry.hpp"
#include "bench_support.hpp"
#include "gen/random_instances.hpp"
#include "util/table.hpp"

namespace {

using namespace pipeopt;

struct Ladder {
  util::Summary greedy_gap, ls_gap, tabu_gap, sa_gap;
  util::Summary greedy_us, ls_us, tabu_us, sa_us;
  int instances = 0;
};

/// One forced-solver facade call; +inf value when the solver found nothing.
api::SolveResult run_forced(const core::Problem& problem, const char* solver,
                            api::Objective objective, std::uint64_t seed) {
  api::SolveRequest request;
  request.objective = objective;
  request.solver = solver;
  request.seed = seed;
  return api::solve(problem, request);
}

/// Period minimization on heterogeneous platforms (Table 1's hard cells).
Ladder period_ladder(std::uint64_t seed, std::size_t stages, std::size_t procs,
                     bool with_exact) {
  util::Rng rng(seed);
  Ladder ladder;
  for (int i = 0; i < 12; ++i) {
    gen::ProblemShape shape;
    shape.applications = 2;
    shape.app.min_stages = 1;
    shape.app.max_stages = stages;
    shape.processors = procs;
    shape.platform.modes = 2;
    shape.platform_class = core::PlatformClass::FullyHeterogeneous;
    const auto problem = gen::random_problem(rng, shape);

    const auto greedy =
        run_forced(problem, "greedy-interval", api::Objective::Period, seed + i);
    if (!greedy.solved()) continue;
    ladder.greedy_us.add(greedy.wall_seconds * 1e6);

    const auto ls =
        run_forced(problem, "local-search", api::Objective::Period, seed + i);
    ladder.ls_us.add(ls.wall_seconds * 1e6);

    const auto tabu =
        run_forced(problem, "tabu-search", api::Objective::Period, seed + i);
    ladder.tabu_us.add(tabu.wall_seconds * 1e6);

    const auto sa =
        run_forced(problem, "annealing", api::Objective::Period, seed + i);
    ladder.sa_us.add(sa.wall_seconds * 1e6);

    double reference =
        std::min({greedy.value, ls.value, tabu.value, sa.value});
    if (with_exact) {
      const auto oracle = run_forced(problem, "exact-enumeration",
                                     api::Objective::Period, seed + i);
      if (!oracle.solved()) continue;
      reference = oracle.value;
    }
    ++ladder.instances;
    ladder.greedy_gap.add(greedy.value / reference);
    ladder.ls_gap.add(ls.value / reference);
    ladder.tabu_gap.add(tabu.value / reference);
    ladder.sa_gap.add(sa.value / reference);
  }
  return ladder;
}

void print_ladder(const char* title, const Ladder& ladder, bool with_exact) {
  std::printf("%s (%d instances, gaps vs %s):\n", title, ladder.instances,
              with_exact ? "exact optimum" : "best heuristic");
  util::Table table({"solver (forced)", "median gap", "worst gap", "median time"});
  const auto row = [&](const char* name, const util::Summary& gap,
                       const util::Summary& us) {
    table.add_row({name, util::format_double(gap.median(), 3),
                   util::format_double(gap.max(), 3),
                   util::format_double(us.median(), 0) + "us"});
  };
  row("greedy-interval", ladder.greedy_gap, ladder.greedy_us);
  row("local-search", ladder.ls_gap, ladder.ls_us);
  row("tabu-search", ladder.tabu_gap, ladder.tabu_us);
  row("annealing", ladder.sa_gap, ladder.sa_us);
  std::fputs(table.render("  ").c_str(), stdout);
  std::puts("");
}

}  // namespace

int main() {
  std::puts("=== HEUR: heuristic quality ladder on NP-hard cells ===");
  std::puts("(all rungs driven through the api::Solver facade)\n");

  // Toy scale: exact optimum available.
  print_ladder("Period, fully heterogeneous, toy scale (n<=3, p=4)",
               period_ladder(1001, 3, 4, true), true);

  // Medium scale: exact unreachable; gaps relative to the best heuristic.
  print_ladder("Period, fully heterogeneous, medium scale (n<=10, p=12)",
               period_ladder(1002, 10, 12, false), false);

  // Tri-criteria energy minimization (Thm 26's NP-hard regime): the
  // heuristic-ladder solver (greedy -> DVFS scaling -> local search ->
  // annealing) against the exhaustive oracle, both through the facade.
  std::puts("Tri-criteria energy (multi-modal, period+latency bounds):");
  util::Rng rng(1003);
  util::Summary scale_gap, ladder_gap;
  int instances = 0;
  for (int i = 0; i < 12; ++i) {
    gen::ProblemShape shape;
    shape.applications = 1;
    shape.app.min_stages = 2;
    shape.app.max_stages = 3;
    shape.processors = 4;
    shape.platform.modes = 3;
    shape.platform_class = core::PlatformClass::FullyHomogeneous;
    const auto problem = gen::random_problem(rng, shape);
    const auto perf = run_forced(problem, "exact-enumeration",
                                 api::Objective::Period, 1003 + i);
    const auto lat = run_forced(problem, "exact-enumeration",
                                api::Objective::Latency, 1003 + i);
    if (!perf.solved() || !lat.solved()) continue;

    api::SolveRequest request;
    request.objective = api::Objective::Energy;
    request.constraints.period = core::Thresholds::uniform(
        problem, perf.value * rng.uniform(1.2, 2.0));
    request.constraints.latency = core::Thresholds::uniform(
        problem, lat.value * rng.uniform(1.2, 2.0));
    request.seed = 1003 + i;

    auto oracle_request = request;
    oracle_request.solver = "exact-enumeration";
    const auto oracle = api::solve(problem, oracle_request);
    if (!oracle.solved()) continue;

    auto ladder_request = request;
    ladder_request.solver = "heuristic-ladder";
    const auto ladder = api::solve(problem, ladder_request);
    if (!ladder.solved()) continue;
    // Keep the two gap populations identical: only count instances where
    // the speed-scaling rung actually ran (it is skipped when the greedy
    // start violates the thresholds), so the medians are comparable.
    const auto scaled = bench::diagnostic_value(ladder, "speed-scaling");
    if (!scaled) continue;

    ++instances;
    scale_gap.add(*scaled / oracle.value);
    ladder_gap.add(ladder.value / oracle.value);
  }
  std::printf("  %d instances: DVFS-scaling gap med %.3fx | full ladder %.3fx\n",
              instances, scale_gap.median(), ladder_gap.median());
  return 0;
}
