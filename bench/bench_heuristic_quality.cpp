/// \file bench_heuristic_quality.cpp
/// Experiment HEUR: quality/runtime ladder of the polynomial heuristics on
/// the NP-hard cells — the paper's §6 future work, quantified. For each
/// regime the table reports median gap to the exact optimum and median
/// runtime, at toy scale (where exact is available) and at medium scale
/// (runtime only — exact is unreachable there, which is the point).

#include <cstdio>

#include "bench_support.hpp"
#include "core/evaluation.hpp"
#include "exact/exact_solvers.hpp"
#include "gen/random_instances.hpp"
#include "heuristics/annealing.hpp"
#include "heuristics/interval_greedy.hpp"
#include "heuristics/local_search.hpp"
#include "heuristics/speed_scaling.hpp"
#include "heuristics/tabu_search.hpp"
#include "util/table.hpp"

namespace {

using namespace pipeopt;

struct Ladder {
  util::Summary greedy_gap, ls_gap, tabu_gap, sa_gap;
  util::Summary greedy_us, ls_us, tabu_us, sa_us;
  int instances = 0;
};

/// Period minimization on heterogeneous platforms (Table 1's hard cells).
Ladder period_ladder(std::uint64_t seed, std::size_t stages, std::size_t procs,
                     bool with_exact) {
  util::Rng rng(seed);
  Ladder ladder;
  for (int i = 0; i < 12; ++i) {
    gen::ProblemShape shape;
    shape.applications = 2;
    shape.app.min_stages = 1;
    shape.app.max_stages = stages;
    shape.processors = procs;
    shape.platform.modes = 2;
    shape.platform_class = core::PlatformClass::FullyHeterogeneous;
    const auto problem = gen::random_problem(rng, shape);

    util::Stopwatch watch;
    const auto greedy = heuristics::greedy_interval_mapping(problem);
    if (!greedy) continue;
    const double greedy_value =
        core::evaluate(problem, *greedy).max_weighted_period;
    ladder.greedy_us.add(watch.elapsed_micros());

    watch.reset();
    const auto ls =
        heuristics::local_search(problem, *greedy, heuristics::Goal::Period);
    ladder.ls_us.add(watch.elapsed_micros());

    watch.reset();
    heuristics::TabuOptions tabu_options;
    tabu_options.iterations = 200;
    const auto tabu = heuristics::tabu_search(
        problem, *greedy, heuristics::Goal::Period, {}, tabu_options);
    ladder.tabu_us.add(watch.elapsed_micros());

    watch.reset();
    util::Rng walk = rng.fork();
    heuristics::AnnealingOptions sa_options;
    sa_options.iterations = 1200;
    const auto sa = heuristics::simulated_annealing(
        problem, *greedy, heuristics::Goal::Period, {}, walk, sa_options);
    ladder.sa_us.add(watch.elapsed_micros());

    double reference = std::min({greedy_value, ls.value, tabu.value, sa.value});
    if (with_exact) {
      const auto oracle =
          exact::exact_min_period(problem, exact::MappingKind::Interval);
      if (!oracle) continue;
      reference = oracle->value;
    }
    ++ladder.instances;
    ladder.greedy_gap.add(greedy_value / reference);
    ladder.ls_gap.add(ls.value / reference);
    ladder.tabu_gap.add(tabu.value / reference);
    ladder.sa_gap.add(sa.value / reference);
  }
  return ladder;
}

void print_ladder(const char* title, const Ladder& ladder, bool with_exact) {
  std::printf("%s (%d instances, gaps vs %s):\n", title, ladder.instances,
              with_exact ? "exact optimum" : "best heuristic");
  util::Table table({"heuristic", "median gap", "worst gap", "median time"});
  const auto row = [&](const char* name, const util::Summary& gap,
                       const util::Summary& us) {
    table.add_row({name, util::format_double(gap.median(), 3),
                   util::format_double(gap.max(), 3),
                   util::format_double(us.median(), 0) + "us"});
  };
  row("greedy construction", ladder.greedy_gap, ladder.greedy_us);
  row("+ local search", ladder.ls_gap, ladder.ls_us);
  row("tabu search", ladder.tabu_gap, ladder.tabu_us);
  row("simulated annealing", ladder.sa_gap, ladder.sa_us);
  std::fputs(table.render("  ").c_str(), stdout);
  std::puts("");
}

}  // namespace

int main() {
  std::puts("=== HEUR: heuristic quality ladder on NP-hard cells ===\n");

  // Toy scale: exact optimum available.
  print_ladder("Period, fully heterogeneous, toy scale (n<=3, p=4)",
               period_ladder(1001, 3, 4, true), true);

  // Medium scale: exact unreachable; gaps relative to the best heuristic.
  print_ladder("Period, fully heterogeneous, medium scale (n<=10, p=12)",
               period_ladder(1002, 10, 12, false), false);

  // Tri-criteria energy minimization (Thm 26's NP-hard regime).
  std::puts("Tri-criteria energy (multi-modal, period+latency bounds):");
  util::Rng rng(1003);
  util::Summary scale_gap, ls_gap;
  int instances = 0;
  for (int i = 0; i < 12; ++i) {
    gen::ProblemShape shape;
    shape.applications = 1;
    shape.app.min_stages = 2;
    shape.app.max_stages = 3;
    shape.processors = 4;
    shape.platform.modes = 3;
    shape.platform_class = core::PlatformClass::FullyHomogeneous;
    const auto problem = gen::random_problem(rng, shape);
    const auto perf =
        exact::exact_min_period(problem, exact::MappingKind::Interval);
    const auto lat =
        exact::exact_min_latency(problem, exact::MappingKind::Interval);
    if (!perf || !lat) continue;
    const auto periods =
        core::Thresholds::uniform(problem, perf->value * rng.uniform(1.2, 2.0));
    const auto latencies =
        core::Thresholds::uniform(problem, lat->value * rng.uniform(1.2, 2.0));
    const auto oracle = exact::exact_min_energy_tricriteria(
        problem, exact::MappingKind::Interval, periods, latencies);
    if (!oracle) continue;

    core::ConstraintSet cs;
    cs.period = periods;
    cs.latency = latencies;
    const auto start = heuristics::greedy_interval_mapping(problem);
    if (!start || !cs.satisfied_by(core::evaluate(problem, *start))) continue;
    const auto scaled = heuristics::scale_down_speeds(problem, *start, cs);
    const auto searched = heuristics::local_search(
        problem, scaled.mapping, heuristics::Goal::Energy, cs);
    ++instances;
    scale_gap.add(scaled.energy_after / oracle->value);
    ls_gap.add(searched.value / oracle->value);
  }
  std::printf("  %d instances: DVFS-scaling gap med %.3fx | +local search %.3fx\n",
              instances, scale_gap.median(), ls_gap.median());
  return 0;
}
