/// \file bench_simulator.cpp
/// Experiment SIM: simulator throughput and the overlap vs no-overlap
/// ablation. Reports data-sets/second for growing chains and fleets, and
/// the per-model measured periods on a reference mapping (the Eq. 3 vs
/// Eq. 4 gap made concrete).

#include <benchmark/benchmark.h>

#include "core/evaluation.hpp"
#include "gen/random_instances.hpp"
#include "gen/workloads.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace pipeopt;

/// One app split across `procs` processors on a homogeneous cluster.
std::pair<core::Problem, core::Mapping> chain_setup(std::size_t stages,
                                                    std::size_t procs,
                                                    core::CommModel comm) {
  util::Rng rng(91);
  gen::ProblemShape shape;
  shape.applications = 1;
  shape.app.min_stages = shape.app.max_stages = stages;
  shape.processors = procs;
  shape.platform_class = core::PlatformClass::FullyHomogeneous;
  shape.comm = comm;
  core::Problem problem = gen::random_problem(rng, shape);

  // Even split into `procs` intervals.
  std::vector<core::IntervalAssignment> ivs;
  const std::size_t per = stages / procs;
  std::size_t first = 0;
  for (std::size_t j = 0; j < procs; ++j) {
    const std::size_t last = (j + 1 == procs) ? stages - 1 : first + per - 1;
    ivs.push_back({0, first, last, j,
                   problem.platform().processor(j).max_mode()});
    first = last + 1;
  }
  return {std::move(problem), core::Mapping(std::move(ivs))};
}

void BM_SimulateOverlap(benchmark::State& state) {
  const auto datasets = static_cast<std::size_t>(state.range(0));
  const auto [problem, mapping] = chain_setup(16, 4, core::CommModel::Overlap);
  sim::SimConfig config;
  config.datasets = datasets;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::simulate(problem, mapping, config));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(datasets));
}
BENCHMARK(BM_SimulateOverlap)->RangeMultiplier(4)->Range(64, 16384);

void BM_SimulateNoOverlap(benchmark::State& state) {
  const auto datasets = static_cast<std::size_t>(state.range(0));
  const auto [problem, mapping] = chain_setup(16, 4, core::CommModel::NoOverlap);
  sim::SimConfig config;
  config.datasets = datasets;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::simulate(problem, mapping, config));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(datasets));
}
BENCHMARK(BM_SimulateNoOverlap)->RangeMultiplier(4)->Range(64, 16384);

void BM_SimulateChainLength(benchmark::State& state) {
  const auto stages = static_cast<std::size_t>(state.range(0));
  const auto [problem, mapping] =
      chain_setup(stages, stages / 2, core::CommModel::Overlap);
  sim::SimConfig config;
  config.datasets = 256;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::simulate(problem, mapping, config));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SimulateChainLength)
    ->RangeMultiplier(2)
    ->Range(4, 128)
    ->Complexity();

/// The overlap/no-overlap ablation on the video workload: measured periods
/// reported as counters (Eq. 3 max vs Eq. 4 sum).
void BM_ModelAblationVideo(benchmark::State& state) {
  std::vector<core::Application> apps{gen::video_transcode_app(4.0)};
  core::Platform cluster =
      gen::homogeneous_cluster(6, 1, 4.0, 1.0, 8.0, 0.0);
  const bool overlap = state.range(0) == 1;
  core::Problem problem(apps, cluster,
                        overlap ? core::CommModel::Overlap
                                : core::CommModel::NoOverlap);
  std::vector<core::IntervalAssignment> ivs{{0, 0, 1, 0, 0},
                                            {0, 2, 3, 1, 0},
                                            {0, 4, 5, 2, 0}};
  const core::Mapping mapping(std::move(ivs));
  sim::SimConfig config;
  config.datasets = 512;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::simulate(problem, mapping, config));
  }
  // Counters from a dedicated run outside the timing loop.
  const auto reference = sim::simulate(problem, mapping, config);
  state.counters["measured_period"] = reference.apps[0].steady_period;
  state.counters["analytic_period"] =
      core::evaluate(problem, mapping).max_weighted_period;
}
BENCHMARK(BM_ModelAblationVideo)->Arg(1)->Arg(0);

}  // namespace

BENCHMARK_MAIN();
