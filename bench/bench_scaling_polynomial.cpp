/// \file bench_scaling_polynomial.cpp
/// Experiment SCALE-P: wall-clock scaling of every polynomial algorithm the
/// paper states, over growing instance sizes. The complexity claims of
/// Theorems 1, 3, 12, 15/16, 18/19, 21 and 24 predict polynomial growth;
/// google-benchmark's complexity fitting reports the observed exponents.

#include <benchmark/benchmark.h>

#include "algorithms/bicriteria_period_latency.hpp"
#include "algorithms/energy_interval_dp.hpp"
#include "algorithms/energy_matching.hpp"
#include "algorithms/interval_period_dp.hpp"
#include "algorithms/interval_period_multi.hpp"
#include "algorithms/latency_algorithms.hpp"
#include "algorithms/one_to_one_period.hpp"
#include "algorithms/tricriteria_unimodal.hpp"
#include "gen/random_instances.hpp"

namespace {

using namespace pipeopt;

/// Random comm-homogeneous problem with N total stages on 2N processors.
core::Problem one_to_one_instance(std::size_t n, std::uint64_t seed,
                                  std::size_t modes = 1) {
  util::Rng rng(seed);
  gen::ProblemShape shape;
  shape.applications = std::max<std::size_t>(1, n / 4);
  shape.app.min_stages = 1;
  shape.app.max_stages =
      std::max<std::size_t>(1, 2 * n / shape.applications / 2);
  shape.processors = 2 * n;
  shape.platform.modes = modes;
  shape.platform_class = core::PlatformClass::CommHomogeneous;
  return gen::random_problem(rng, shape);
}

/// Fully homogeneous multi-application problem.
core::Problem fully_hom_instance(std::size_t stages_per_app, std::size_t apps,
                                 std::size_t procs, std::uint64_t seed,
                                 std::size_t modes = 1) {
  util::Rng rng(seed);
  gen::ProblemShape shape;
  shape.applications = apps;
  shape.app.min_stages = stages_per_app;
  shape.app.max_stages = stages_per_app;
  shape.processors = procs;
  shape.platform.modes = modes;
  shape.platform_class = core::PlatformClass::FullyHomogeneous;
  return gen::random_problem(rng, shape);
}

void BM_OneToOnePeriod(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto problem = one_to_one_instance(n, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(algorithms::one_to_one_min_period(problem));
  }
  state.SetComplexityN(static_cast<std::int64_t>(problem.total_stages()));
}
BENCHMARK(BM_OneToOnePeriod)->RangeMultiplier(2)->Range(4, 64)->Complexity();

void BM_IntervalPeriodDp(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(7);
  gen::AppParams params;
  params.min_stages = params.max_stages = n;
  const auto app = gen::random_application(rng, params);
  for (auto _ : state) {
    const algorithms::IntervalPeriodDp dp(app, 2.0, 1.0,
                                          core::CommModel::Overlap, n);
    benchmark::DoNotOptimize(dp.min_period_by_count(n));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_IntervalPeriodDp)->RangeMultiplier(2)->Range(8, 256)->Complexity();

void BM_IntervalPeriodMulti(benchmark::State& state) {
  const auto apps = static_cast<std::size_t>(state.range(0));
  const auto problem = fully_hom_instance(8, apps, 4 * apps, 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(algorithms::interval_min_period(problem));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_IntervalPeriodMulti)->RangeMultiplier(2)->Range(2, 16)->Complexity();

void BM_IntervalLatency(benchmark::State& state) {
  const auto apps = static_cast<std::size_t>(state.range(0));
  util::Rng rng(13);
  gen::ProblemShape shape;
  shape.applications = apps;
  shape.processors = 2 * apps;
  shape.platform_class = core::PlatformClass::CommHomogeneous;
  const auto problem = gen::random_problem(rng, shape);
  for (auto _ : state) {
    benchmark::DoNotOptimize(algorithms::interval_min_latency(problem));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_IntervalLatency)->RangeMultiplier(2)->Range(2, 64)->Complexity();

void BM_LatencyUnderPeriodDp(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(17);
  gen::AppParams params;
  params.min_stages = params.max_stages = n;
  const auto app = gen::random_application(rng, params);
  for (auto _ : state) {
    const algorithms::LatencyUnderPeriodDp dp(app, 2.0, 1.0,
                                              core::CommModel::Overlap, n,
                                              1e9);
    benchmark::DoNotOptimize(dp.min_latency_by_count(n));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_LatencyUnderPeriodDp)
    ->RangeMultiplier(2)
    ->Range(8, 256)
    ->Complexity();

void BM_EnergyMatching(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto problem = one_to_one_instance(n, 23, /*modes=*/3);
  const auto bounds = core::Thresholds::unconstrained(problem.application_count());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        algorithms::one_to_one_min_energy_under_period(problem, bounds));
  }
  state.SetComplexityN(static_cast<std::int64_t>(problem.total_stages()));
}
BENCHMARK(BM_EnergyMatching)->RangeMultiplier(2)->Range(4, 64)->Complexity();

void BM_EnergyIntervalDp(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto problem = fully_hom_instance(n, 1, n, 29, /*modes=*/3);
  for (auto _ : state) {
    const algorithms::EnergyIntervalDp dp(problem, 0, n, 1e9);
    benchmark::DoNotOptimize(dp.min_energy_at_most(n));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_EnergyIntervalDp)->RangeMultiplier(2)->Range(8, 128)->Complexity();

void BM_EnergyIntervalMulti(benchmark::State& state) {
  const auto apps = static_cast<std::size_t>(state.range(0));
  const auto problem = fully_hom_instance(6, apps, 3 * apps, 31, /*modes=*/3);
  const auto bounds = core::Thresholds::unconstrained(apps);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        algorithms::interval_min_energy_under_period(problem, bounds));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_EnergyIntervalMulti)
    ->RangeMultiplier(2)
    ->Range(2, 16)
    ->Complexity();

void BM_TricriteriaEnergyFace(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto problem = fully_hom_instance(n, 2, 2 * n, 37, /*modes=*/1);
  const auto periods = core::Thresholds::unconstrained(2);
  const auto latencies = core::Thresholds::unconstrained(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(algorithms::interval_min_energy_tricriteria(
        problem, periods, latencies));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_TricriteriaEnergyFace)
    ->RangeMultiplier(2)
    ->Range(4, 32)
    ->Complexity();

}  // namespace

BENCHMARK_MAIN();
