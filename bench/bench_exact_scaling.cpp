/// \file bench_exact_scaling.cpp
/// Experiment SCALE-X: the exponential wall behind the NP-completeness
/// results. Measures exhaustive-search time and reports the closed-form
/// search-space size as a counter; the contrast with SCALE-P's polynomial
/// curves is the empirical shape of Tables 1 and 2.

#include <benchmark/benchmark.h>

#include "exact/branch_and_bound.hpp"
#include "exact/exact_solvers.hpp"
#include "gen/random_instances.hpp"

namespace {

using namespace pipeopt;

core::Problem het_instance(std::size_t n, std::size_t p, std::uint64_t seed,
                           std::size_t modes) {
  util::Rng rng(seed);
  gen::ProblemShape shape;
  shape.applications = 1;
  shape.app.min_stages = shape.app.max_stages = n;
  shape.processors = p;
  shape.platform.modes = modes;
  shape.platform_class = core::PlatformClass::FullyHeterogeneous;
  return gen::random_problem(rng, shape);
}

void BM_ExactIntervalPeriod(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto problem = het_instance(n, n, 3, 1);
  exact::EnumerationOptions options;
  options.kind = exact::MappingKind::Interval;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        exact::exact_min_period(problem, exact::MappingKind::Interval));
  }
  state.counters["space"] = static_cast<double>(
      exact::mapping_space_size(problem, options));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ExactIntervalPeriod)->DenseRange(2, 7, 1)->Complexity();

void BM_ExactOneToOneLatency(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto problem = het_instance(n, n + 1, 5, 1);
  exact::EnumerationOptions options;
  options.kind = exact::MappingKind::OneToOne;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        exact::exact_min_latency(problem, exact::MappingKind::OneToOne));
  }
  state.counters["space"] = static_cast<double>(
      exact::mapping_space_size(problem, options));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ExactOneToOneLatency)->DenseRange(2, 7, 1)->Complexity();

void BM_ExactEnergyWithModes(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto problem = het_instance(n, n, 7, 2);  // 2 modes double the space
  exact::EnumerationOptions options;
  options.kind = exact::MappingKind::Interval;
  options.enumerate_modes = true;
  const auto bounds = core::Thresholds::unconstrained(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(exact::exact_min_energy_under_period(
        problem, exact::MappingKind::Interval, bounds));
  }
  state.counters["space"] = static_cast<double>(
      exact::mapping_space_size(problem, options));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ExactEnergyWithModes)->DenseRange(2, 6, 1)->Complexity();

/// Branch-and-bound on the same instances as BM_ExactIntervalPeriod: the
/// nodes counter shows how far the bounds push the wall (the growth stays
/// exponential — NP-hardness is not negotiable — but the base shrinks).
void BM_BranchBoundIntervalPeriod(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto problem = het_instance(n, n, 3, 1);
  std::uint64_t nodes = 0;
  for (auto _ : state) {
    const auto result =
        exact::branch_bound_min_period(problem, exact::MappingKind::Interval);
    nodes = result ? result->stats.nodes : 0;
    benchmark::DoNotOptimize(result);
  }
  state.counters["nodes"] = static_cast<double>(nodes);
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_BranchBoundIntervalPeriod)->DenseRange(2, 9, 1)->Complexity();

}  // namespace

BENCHMARK_MAIN();
