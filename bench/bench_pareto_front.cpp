/// \file bench_pareto_front.cpp
/// Experiment PARETO: period/energy trade-off curves — the quantitative
/// form of the paper's laptop/server narrative (§1) and of the §2 example's
/// 136 -> 46 -> 10 progression. Drives `api::sweep` (the same facade path
/// the server's {"type":"pareto"} request and the CLI `pareto` subcommand
/// use): each sweep minimizes energy under a grid of period bounds, with a
/// round of adaptive refinement, and prints the resulting fronts with the
/// dispatched solver names.
///
/// Since the plan-reuse PR each sweep also reports its **per-point
/// amortization**: the sweep binds one `SolvePlan` (Eq. 6 weights,
/// candidate filtering, platform class) and warm-starts refinement points,
/// where the old driver re-planned every grid point. The "cold" column
/// replays the same evaluated bounds through per-point `registry.solve`
/// calls — exactly the pre-PR work — and the bench cross-checks the two
/// bit-identical before trusting the speedup. A final section isolates the
/// **warm-start** win on branch-and-bound (the adjacent-grid-point seeding
/// the sweep driver performs): same optimum, same mapping, a fraction of
/// the nodes.

#include <cstdio>
#include <string>
#include <vector>

#include "api/registry.hpp"
#include "api/sweep.hpp"
#include "core/pareto.hpp"
#include "gen/motivating_example.hpp"
#include "gen/random_instances.hpp"
#include "gen/workloads.hpp"
#include "io/result_io.hpp"
#include "util/random.hpp"
#include "util/table.hpp"
#include "util/timing.hpp"

namespace {

using namespace pipeopt;

void print_front(const char* title, const api::ParetoFront& front,
                 const char* swept = "period") {
  std::printf("%s (%zu sweep points -> %zu Pareto-optimal):\n", title,
              front.evaluations.size(), front.front.size());
  util::Table table({std::string(swept) + " <=", "min energy", "solver"});
  for (const std::size_t index : front.front) {
    const api::SweepEvaluation& evaluation = front.evaluations[index];
    table.add_row({util::format_double(evaluation.bound, 4),
                   util::format_double(evaluation.result.metrics.energy, 2),
                   evaluation.result.solver});
  }
  std::fputs(table.render("  ").c_str(), stdout);
  std::printf("  energy monotone non-increasing in period: %s\n",
              front.monotone() ? "yes" : "NO");
}

/// Replays the sweep's evaluated bounds the pre-plan-reuse way — one
/// `registry.solve` per point, each re-resolving weights and re-filtering
/// candidates — and cross-checks bit-identity with the sweep's results.
/// Returns the cold wall seconds (negative on divergence).
double cold_replay(const core::Problem& problem,
                   const api::SweepRequest& request,
                   const api::ParetoFront& front) {
  const api::SolverRegistry& registry = api::default_registry();
  const util::Stopwatch watch;
  std::size_t diverged = 0;
  for (const api::SweepEvaluation& evaluation : front.evaluations) {
    const api::SolveRequest cold = api::detail::sweep_point_request(
        problem, request, evaluation.bound, request.base.cancel);
    const api::SolveResult result = registry.solve(problem, cold);
    if (io::format_result(result, "", false) !=
        io::format_result(evaluation.result, "", false)) {
      ++diverged;
    }
  }
  const double seconds = watch.elapsed_seconds();
  return diverged == 0 ? seconds : -1.0;
}

/// Evaluates the sweep through the shared plan-reusing driver, then prints
/// the front plus the planned-vs-cold amortization line.
api::ParetoFront timed_sweep(const char* title, const core::Problem& problem,
                             api::SweepRequest request) {
  const util::Stopwatch watch;
  api::ParetoFront front = api::sweep(problem, request);
  const double planned_s = watch.elapsed_seconds();
  print_front(title, front, to_string(request.swept));
  const double cold_s = cold_replay(problem, request, front);
  if (cold_s < 0.0) {
    std::printf("  BIT-IDENTITY FAILED: plan-reused sweep diverged from "
                "cold per-point solves\n\n");
    return front;
  }
  std::printf(
      "  per-point amortization: planned %.2f us/pt vs cold %.2f us/pt "
      "(%.2fx, bit-identical)\n\n",
      1e6 * planned_s / static_cast<double>(front.evaluations.size()),
      1e6 * cold_s / static_cast<double>(front.evaluations.size()),
      cold_s / planned_s);
  return front;
}

/// Energy-minimization sweep over the given period-bound grid (the
/// SweepRequest defaults), one adaptive refinement round.
api::ParetoFront energy_sweep(const char* title, const core::Problem& problem,
                              std::vector<double> bounds) {
  api::SweepRequest request;  // defaults: minimize energy, sweep period
  request.bounds = std::move(bounds);
  request.refine = 1;
  return timed_sweep(title, problem, std::move(request));
}

/// The fastest achievable weighted period — the natural left edge of a
/// sweep grid — obtained through the facade like everything else.
double min_period(const core::Problem& problem) {
  const api::SolveResult fastest = api::solve(problem, api::SolveRequest{});
  return fastest.value;
}

}  // namespace

int main() {
  std::puts("=== PARETO: period/energy trade-off fronts ===\n");

  // --- 1. The §2 example, exact front. ------------------------------------
  {
    const auto problem = gen::motivating_example();
    (void)energy_sweep(
        "Motivating example (facade sweep; paper anchors 136/46/10)", problem,
        {1.0, 1.25, 1.5, 1.75, 2.0, 3.0, 4.0, 7.0, 14.0});
  }

  // --- 2. Video service on a homogeneous DVFS cluster (Theorem 21 DP). ---
  {
    std::vector<core::Application> streams{gen::video_transcode_app(8.0, 1.0),
                                           gen::video_transcode_app(4.0, 1.0)};
    const core::Platform cluster =
        gen::homogeneous_cluster(10, 4, 2.0, 4.0, 16.0, 1.0);
    const core::Problem problem(streams, cluster, core::CommModel::Overlap);
    const double fastest = min_period(problem);
    std::vector<double> bounds;
    for (double factor = 1.0; factor <= 4.01; factor += 0.25) {
      bounds.push_back(fastest * factor);
    }
    (void)energy_sweep("Video cluster (10 nodes x 4 DVFS modes)", problem,
                       std::move(bounds));
  }

  // --- 3. Overlap vs no-overlap ablation on the same sweep. ---------------
  {
    std::vector<core::Application> streams{gen::video_transcode_app(4.0, 1.0)};
    const core::Platform cluster =
        gen::homogeneous_cluster(6, 3, 2.0, 3.0, 8.0, 0.5);
    for (const auto comm : {core::CommModel::Overlap, core::CommModel::NoOverlap}) {
      const core::Problem problem(streams, cluster, comm);
      const double fastest = min_period(problem);
      std::vector<double> bounds;
      for (double factor = 1.0; factor <= 3.01; factor += 0.5) {
        bounds.push_back(fastest * factor);
      }
      (void)energy_sweep(comm == core::CommModel::Overlap
                             ? "Ablation: overlap model (Eq. 3)"
                             : "Ablation: no-overlap model (Eq. 4)",
                         problem, std::move(bounds));
    }
  }

  // --- 4. Bind-heavy sweep: Stretch weights. ------------------------------
  // Stretch resolves W_a = 1/X*_a through per-application solo solves at
  // bind time. The plan-reusing driver pays that once per sweep; the old
  // driver paid it once per grid point — this is where the amortization
  // line stops being microseconds and becomes the dominant cost.
  {
    const auto problem = gen::motivating_example();
    api::SweepRequest request;
    request.base.objective = api::Objective::Period;
    request.base.weights = core::WeightPolicy::Stretch;
    request.swept = api::Objective::Energy;
    request.bounds = {10.0, 20.0, 46.0, 136.0};
    request.refine = 2;
    (void)timed_sweep("Stretch-weighted period sweep (solo solves at bind)",
                      problem, std::move(request));
  }

  // --- 5. Warm-start isolation: branch-and-bound node counts. -------------
  // The sweep driver seeds each refinement point's SolveRequest::warm_start
  // with the adjacent tighter bound's achieved value. Isolate that effect
  // on the engine that consumes the hint: an unconstrained period
  // minimization (branch-and-bound's cell) solved cold, then re-solved
  // seeded with its own optimum — the exact situation of two adjacent grid
  // points whose optima coincide or tighten slowly.
  {
    const auto warm_start_demo = [](const char* title,
                                    const core::Problem& problem) {
      api::SolveRequest request;
      request.solver = "branch-and-bound";

      const util::Stopwatch cold_watch;
      const api::SolveResult cold = api::solve(problem, request);
      const double cold_s = cold_watch.elapsed_seconds();
      request.warm_start = cold.value;
      const util::Stopwatch warm_watch;
      const api::SolveResult warm = api::solve(problem, request);
      const double warm_s = warm_watch.elapsed_seconds();

      const auto nodes = [](const api::SolveResult& result) {
        for (const auto& [key, value] : result.diagnostics) {
          if (key == "nodes") return value;
        }
        return std::string("?");
      };
      const bool same = cold.value == warm.value &&
                        cold.mapping.has_value() == warm.mapping.has_value();
      std::printf(
          "  %-28s cold %8s nodes %8.0f us -> seeded %8s nodes %8.0f us; "
          "optimum %s (%s)\n",
          title, nodes(cold).c_str(), 1e6 * cold_s, nodes(warm).c_str(),
          1e6 * warm_s, util::format_double(warm.value).c_str(),
          same ? "identical" : "DIVERGED");
      return same;
    };

    std::puts("Warm-start isolation (branch-and-bound, interval mappings):");
    bool all_same = warm_start_demo("motivating example", gen::motivating_example());
    util::Rng rng(7);
    gen::ProblemShape shape;
    shape.applications = 2;
    shape.app.min_stages = 3;
    shape.app.max_stages = 4;
    shape.processors = 7;
    shape.platform_class = core::PlatformClass::FullyHeterogeneous;
    for (int i = 0; i < 3; ++i) {
      const auto problem = gen::random_problem(rng, shape);
      all_same = warm_start_demo("random fully-het", problem) && all_same;
    }
    if (!all_same) return 1;
  }
  return 0;
}
