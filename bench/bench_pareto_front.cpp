/// \file bench_pareto_front.cpp
/// Experiment PARETO: period/energy trade-off curves — the quantitative
/// form of the paper's laptop/server narrative (§1) and of the §2 example's
/// 136 -> 46 -> 10 progression. Drives `api::sweep` (the same facade path
/// the server's {"type":"pareto"} request and the CLI `pareto` subcommand
/// use): each sweep minimizes energy under a grid of period bounds, with a
/// round of adaptive refinement, and prints the resulting fronts with the
/// dispatched solver names.

#include <cstdio>
#include <vector>

#include "api/registry.hpp"
#include "api/sweep.hpp"
#include "core/pareto.hpp"
#include "gen/motivating_example.hpp"
#include "gen/workloads.hpp"
#include "util/table.hpp"

namespace {

using namespace pipeopt;

void print_front(const char* title, const api::ParetoFront& front) {
  std::printf("%s (%zu sweep points -> %zu Pareto-optimal):\n", title,
              front.evaluations.size(), front.front.size());
  util::Table table({"period <=", "min energy", "solver"});
  for (const std::size_t index : front.front) {
    const api::SweepEvaluation& evaluation = front.evaluations[index];
    table.add_row({util::format_double(evaluation.bound, 4),
                   util::format_double(evaluation.result.metrics.energy, 2),
                   evaluation.result.solver});
  }
  std::fputs(table.render("  ").c_str(), stdout);
  std::printf("  energy monotone non-increasing in period: %s\n\n",
              front.monotone() ? "yes" : "NO");
}

/// Energy-minimization sweep over the given period-bound grid (the
/// SweepRequest defaults), one adaptive refinement round.
api::ParetoFront energy_sweep(const core::Problem& problem,
                              std::vector<double> bounds) {
  api::SweepRequest request;  // defaults: minimize energy, sweep period
  request.bounds = std::move(bounds);
  request.refine = 1;
  return api::sweep(problem, request);
}

/// The fastest achievable weighted period — the natural left edge of a
/// sweep grid — obtained through the facade like everything else.
double min_period(const core::Problem& problem) {
  const api::SolveResult fastest = api::solve(problem, api::SolveRequest{});
  return fastest.value;
}

}  // namespace

int main() {
  std::puts("=== PARETO: period/energy trade-off fronts ===\n");

  // --- 1. The §2 example, exact front. ------------------------------------
  {
    const auto problem = gen::motivating_example();
    print_front(
        "Motivating example (facade sweep; paper anchors 136/46/10)",
        energy_sweep(problem, {1.0, 1.25, 1.5, 1.75, 2.0, 3.0, 4.0, 7.0, 14.0}));
  }

  // --- 2. Video service on a homogeneous DVFS cluster (Theorem 21 DP). ---
  {
    std::vector<core::Application> streams{gen::video_transcode_app(8.0, 1.0),
                                           gen::video_transcode_app(4.0, 1.0)};
    const core::Platform cluster =
        gen::homogeneous_cluster(10, 4, 2.0, 4.0, 16.0, 1.0);
    const core::Problem problem(streams, cluster, core::CommModel::Overlap);
    const double fastest = min_period(problem);
    std::vector<double> bounds;
    for (double factor = 1.0; factor <= 4.01; factor += 0.25) {
      bounds.push_back(fastest * factor);
    }
    print_front("Video cluster (10 nodes x 4 DVFS modes)",
                energy_sweep(problem, std::move(bounds)));
  }

  // --- 3. Overlap vs no-overlap ablation on the same sweep. ---------------
  {
    std::vector<core::Application> streams{gen::video_transcode_app(4.0, 1.0)};
    const core::Platform cluster =
        gen::homogeneous_cluster(6, 3, 2.0, 3.0, 8.0, 0.5);
    for (const auto comm : {core::CommModel::Overlap, core::CommModel::NoOverlap}) {
      const core::Problem problem(streams, cluster, comm);
      const double fastest = min_period(problem);
      std::vector<double> bounds;
      for (double factor = 1.0; factor <= 3.01; factor += 0.5) {
        bounds.push_back(fastest * factor);
      }
      print_front(comm == core::CommModel::Overlap
                      ? "Ablation: overlap model (Eq. 3)"
                      : "Ablation: no-overlap model (Eq. 4)",
                  energy_sweep(problem, std::move(bounds)));
    }
  }
  return 0;
}
