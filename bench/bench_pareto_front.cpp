/// \file bench_pareto_front.cpp
/// Experiment PARETO: period/energy trade-off curves — the quantitative
/// form of the paper's laptop/server narrative (§1) and of the §2 example's
/// 136 -> 46 -> 10 progression. Sweeps period thresholds, solves the
/// energy-minimization problem at each, and prints the resulting fronts.

#include <cstdio>

#include "algorithms/energy_interval_dp.hpp"
#include "algorithms/interval_period_multi.hpp"
#include "core/pareto.hpp"
#include "exact/exact_solvers.hpp"
#include "gen/motivating_example.hpp"
#include "gen/workloads.hpp"
#include "util/table.hpp"

namespace {

using namespace pipeopt;

void print_front(const char* title, const std::vector<core::ParetoPoint>& pts) {
  const auto front = core::pareto_front(pts, /*use_latency=*/false);
  std::printf("%s (%zu sweep points -> %zu Pareto-optimal):\n", title,
              pts.size(), front.size());
  util::Table table({"period <=", "min energy"});
  for (const auto& pt : front) {
    table.add_row({util::format_double(pt.period, 4),
                   util::format_double(pt.energy, 2)});
  }
  std::fputs(table.render("  ").c_str(), stdout);
  std::printf("  energy monotone non-increasing in period: %s\n\n",
              core::energy_monotone_in_period(front) ? "yes" : "NO");
}

}  // namespace

int main() {
  std::puts("=== PARETO: period/energy trade-off fronts ===\n");

  // --- 1. The §2 example, exact front. ------------------------------------
  {
    const auto problem = gen::motivating_example();
    std::vector<core::ParetoPoint> points;
    for (double bound : {1.0, 1.25, 1.5, 1.75, 2.0, 3.0, 4.0, 7.0, 14.0}) {
      const auto result = exact::exact_min_energy_under_period(
          problem, exact::MappingKind::Interval,
          core::Thresholds::per_app({bound, bound}));
      if (!result) continue;
      core::ParetoPoint pt;
      pt.period = bound;
      pt.energy = result->value;
      points.push_back(pt);
    }
    print_front("Motivating example (exact; paper anchors 136/46/10)", points);
  }

  // --- 2. Video service on a homogeneous DVFS cluster (Theorem 21 DP). ---
  {
    std::vector<core::Application> streams{gen::video_transcode_app(8.0, 1.0),
                                           gen::video_transcode_app(4.0, 1.0)};
    const core::Platform cluster =
        gen::homogeneous_cluster(10, 4, 2.0, 4.0, 16.0, 1.0);
    const core::Problem problem(streams, cluster, core::CommModel::Overlap);
    const auto fastest = algorithms::interval_min_period(problem);
    std::vector<core::ParetoPoint> points;
    for (double factor = 1.0; factor <= 4.01; factor += 0.25) {
      const auto result = algorithms::interval_min_energy_under_period(
          problem, core::Thresholds::uniform(problem, fastest->value * factor));
      if (!result) continue;
      core::ParetoPoint pt;
      pt.period = fastest->value * factor;
      pt.energy = result->value;
      points.push_back(pt);
    }
    print_front("Video cluster (Theorem 21 DP, 10 nodes x 4 DVFS modes)",
                points);
  }

  // --- 3. Overlap vs no-overlap ablation on the same sweep. ---------------
  {
    std::vector<core::Application> streams{gen::video_transcode_app(4.0, 1.0)};
    const core::Platform cluster =
        gen::homogeneous_cluster(6, 3, 2.0, 3.0, 8.0, 0.5);
    for (const auto comm : {core::CommModel::Overlap, core::CommModel::NoOverlap}) {
      const core::Problem problem(streams, cluster, comm);
      const auto fastest = algorithms::interval_min_period(problem);
      std::vector<core::ParetoPoint> points;
      for (double factor = 1.0; factor <= 3.01; factor += 0.5) {
        const auto result = algorithms::interval_min_energy_under_period(
            problem,
            core::Thresholds::uniform(problem, fastest->value * factor));
        if (!result) continue;
        core::ParetoPoint pt;
        pt.period = fastest->value * factor;
        pt.energy = result->value;
        points.push_back(pt);
      }
      print_front(comm == core::CommModel::Overlap
                      ? "Ablation: overlap model (Eq. 3)"
                      : "Ablation: no-overlap model (Eq. 4)",
                  points);
    }
  }
  return 0;
}
