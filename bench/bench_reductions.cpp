/// \file bench_reductions.cpp
/// Experiment RED: the NP-completeness reductions, executed. For families
/// of YES/NO combinatorial instances the gadgets must separate perfectly,
/// and the exact solve time of the encoded scheduling instances must climb
/// steeply with size — the observable content of Theorems 5, 9 and 26 and
/// of the §3.3 general-mapping remark.

#include <cstdio>

#include "exact/exact_solvers.hpp"
#include "reductions/general_mapping_hardness.hpp"
#include "reductions/three_partition_latency.hpp"
#include "reductions/three_partition_period.hpp"
#include "reductions/two_partition_tricriteria.hpp"
#include "solvers/partition.hpp"
#include "util/random.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timing.hpp"

namespace {

using namespace pipeopt;
using solvers::ThreePartitionInstance;

/// Random canonical 3-PARTITION instance: m triples drawn around B/3 and
/// repaired to sum B, values clamped to (B/4, B/2).
ThreePartitionInstance random_three_partition(util::Rng& rng, std::size_t m,
                                              std::int64_t b) {
  std::vector<std::int64_t> values;
  for (std::size_t j = 0; j < m; ++j) {
    // Draw a triple summing to exactly B within the canonical range.
    const std::int64_t lo = b / 4 + 1;
    const std::int64_t hi = (b - 1) / 2;
    for (;;) {
      const std::int64_t a1 = rng.uniform_int(lo, hi);
      const std::int64_t a2 = rng.uniform_int(lo, hi);
      const std::int64_t a3 = b - a1 - a2;
      if (a3 >= lo && a3 <= hi) {
        values.push_back(a1);
        values.push_back(a2);
        values.push_back(a3);
        break;
      }
    }
  }
  // Shuffle so triples are not adjacent.
  const auto perm = rng.permutation(values.size());
  std::vector<std::int64_t> shuffled(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) shuffled[i] = values[perm[i]];
  return ThreePartitionInstance{std::move(shuffled), b};
}

}  // namespace

int main() {
  std::puts("=== RED: NP-hardness reductions, executed ===\n");
  util::Rng rng(20260611);

  // --- Theorem 5: 3-PARTITION -> interval period. -------------------------
  // The special-app exact solver enumerates (A+1)^p processor assignments,
  // so the demonstration stays at m <= 3 (p <= 9); known YES/NO anchors are
  // included explicitly.
  {
    util::Table table({"m", "B", "3-part", "gadget period", "separates"});
    int correct = 0, total = 0;
    std::vector<ThreePartitionInstance> instances{
        ThreePartitionInstance{{4, 5, 6, 6, 5, 4}, 15},   // YES
        ThreePartitionInstance{{4, 4, 4, 6, 6, 6}, 15},   // NO
        ThreePartitionInstance{{4, 4, 4, 4, 4, 4}, 12},   // YES
        ThreePartitionInstance{{4, 4, 4, 4, 4, 6}, 13},   // NO (no 13-triple)
    };
    instances.push_back(random_three_partition(rng, 2, 15));
    instances.push_back(random_three_partition(rng, 3, 15));
    instances.push_back(random_three_partition(rng, 3, 15));
    for (const auto& instance : instances) {
      if (!instance.is_canonical()) continue;
      const bool partition_yes = solvers::three_partition(instance).has_value();
      const auto gadget = reductions::encode_three_partition_period(instance);
      const double period = reductions::special_app_exact_period(gadget.problem);
      const bool gadget_yes = period <= 1.0 + 1e-9;
      ++total;
      if (gadget_yes == partition_yes) ++correct;
      table.add_row({std::to_string(instance.group_count()),
                     std::to_string(instance.target),
                     partition_yes ? "YES" : "no",
                     util::format_double(period, 4),
                     gadget_yes == partition_yes ? "ok" : "MISMATCH"});
    }
    std::printf("Theorem 5 (3-PARTITION -> interval period): %d/%d separated\n",
                correct, total);
    std::fputs(table.render("  ").c_str(), stdout);
    std::puts("");
  }

  // --- Theorem 9: 3-PARTITION -> one-to-one latency. ----------------------
  {
    int correct = 0, total = 0;
    util::Summary solve_us;
    for (std::size_t m : {2u, 2u, 3u}) {
      auto instance = random_three_partition(rng, m, 15);
      if (total % 2 == 1 && instance.values.size() >= 2) {
        instance.values[0] += 1;
        instance.values[1] -= 1;
      }
      if (!instance.is_canonical()) continue;
      const bool partition_yes = solvers::three_partition(instance).has_value();
      const auto gadget = reductions::encode_three_partition_latency(instance);
      util::Stopwatch watch;
      const auto result = exact::exact_min_latency(gadget.problem,
                                                   exact::MappingKind::OneToOne);
      solve_us.add(watch.elapsed_micros());
      const bool gadget_yes =
          result && result->value <= gadget.target_latency + 1e-9;
      ++total;
      if (gadget_yes == partition_yes) ++correct;
    }
    std::printf(
        "Theorem 9 (3-PARTITION -> 1-to-1 latency): %d/%d separated, exact "
        "solve median %.0fus (m=2..3; blows up combinatorially beyond)\n\n",
        correct, total, solve_us.median());
  }

  // --- Theorem 26: 2-PARTITION -> tri-criteria. ----------------------------
  {
    struct Case {
      std::vector<std::int64_t> values;
      bool yes;
    };
    const std::vector<Case> cases{
        {{1, 2, 3}, true},   {{1, 1, 4}, false}, {{2, 3, 5}, true},
        {{1, 2}, false},     {{3, 3}, true},     {{2, 2, 2, 2}, true},
        {{1, 1, 1, 5}, false}};
    int correct = 0;
    for (const Case& c : cases) {
      const auto gadget = reductions::encode_two_partition_tricriteria(c.values);
      const auto result = exact::exact_min_energy_tricriteria(
          gadget.problem, exact::MappingKind::OneToOne,
          *gadget.constraints.period, *gadget.constraints.latency);
      const bool gadget_yes =
          result && result->value <= *gadget.constraints.energy_budget + 1e-9;
      if (gadget_yes == c.yes) ++correct;
    }
    std::printf(
        "Theorem 26 (2-PARTITION -> tri-criteria, multi-modal FH): %d/%zu "
        "separated\n\n",
        correct, cases.size());
  }

  // --- §3.3 remark: 2-PARTITION -> general-mapping period. ----------------
  {
    int correct = 0, total = 0;
    for (int rep = 0; rep < 20; ++rep) {
      std::vector<std::int64_t> values;
      const std::size_t n = 3 + rng.index(8);
      for (std::size_t i = 0; i < n; ++i) values.push_back(rng.uniform_int(1, 15));
      const auto gadget = reductions::encode_two_partition_general(values);
      const bool expected = solvers::two_partition(values).has_value();
      ++total;
      if (reductions::general_gadget_is_yes(gadget) == expected) ++correct;
    }
    std::printf(
        "§3.3 (2-PARTITION -> general-mapping period): %d/%d separated — the "
        "reason general mappings are excluded from the model\n",
        correct, total);
  }
  return 0;
}
