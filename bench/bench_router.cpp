/// \file bench_router.cpp
/// Experiment ROUTE: throughput scaling of pipeopt-router over 1..N
/// shards, against a single bare server.
///
/// The same request stream (Table 1/2 instance grid, period objective)
/// is driven by concurrent lock-step clients through three deployments:
///
///  1. one bare pipeopt-server — the no-router baseline;
///  2. the router in front of 1 shard — isolates the relay overhead
///     (one extra hop: client -> router -> shard -> router -> client);
///  3. the router over 2 and 4 shards — the scaling story: key-hash
///     routing spreads the stream across independent accept loops and
///     worker pools, so protocol-bound traffic scales with shard count
///     until the cores run out.
///
/// Every wire response (all deployments) is cross-checked bit-identical
/// against per-call `api::solve` — the router contract: a shard's bytes
/// stream through unmodified. Shards here are in-process `server::Server`
/// instances (endpoint mode); `route --spawn` adds fork/exec supervision
/// but the data path measured here is byte-for-byte the same.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/registry.hpp"
#include "bench_support.hpp"
#include "io/request_io.hpp"
#include "io/result_io.hpp"
#include "router/router.hpp"
#include "server/server.hpp"
#include "util/fdio.hpp"
#include "util/table.hpp"
#include "util/timing.hpp"

namespace {

using namespace pipeopt;
using bench::CellShape;
using bench::Column;

constexpr int kInstancesPerColumn = 30;
constexpr std::size_t kClients = 4;
constexpr std::size_t kShardJobs = 2;

std::vector<core::Problem> make_grid() {
  CellShape shape;
  shape.applications = 2;
  shape.min_stages = 1;
  shape.max_stages = 3;
  shape.processors = 5;

  std::vector<core::Problem> problems;
  util::Rng rng(20260808);
  for (const Column column : {Column::FullyHom, Column::SpecialApp,
                              Column::CommHom, Column::FullyHet}) {
    for (int i = 0; i < kInstancesPerColumn; ++i) {
      shape.comm = (i % 2 == 0) ? core::CommModel::Overlap
                                : core::CommModel::NoOverlap;
      problems.push_back(bench::make_instance(rng, column, shape));
    }
  }
  return problems;
}

/// One lock-step client: sends its slice of request lines, collects the
/// wall-less comparable form of every response.
std::vector<std::string> drive_client(std::uint16_t port,
                                      const std::vector<std::string>& lines) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    std::perror("bench_router: connect");
    std::exit(1);
  }
  std::vector<std::string> responses;
  util::FdLineReader reader(fd);
  for (const std::string& line : lines) {
    std::string response;
    if (!util::write_line(fd, line) || !reader.next_line(response)) {
      std::fprintf(stderr, "bench_router: connection lost\n");
      std::exit(1);
    }
    responses.push_back(io::format_result(io::parse_result_line(response).result,
                                          "", /*include_wall=*/false));
  }
  ::close(fd);
  return responses;
}

/// An in-process shard fleet behind a router, torn down in order.
struct Fleet {
  std::vector<std::unique_ptr<server::Server>> shards;
  std::vector<std::thread> shard_threads;
  std::unique_ptr<router::Router> router;
  std::thread router_thread;
  std::uint16_t port = 0;

  explicit Fleet(std::size_t shard_count) {
    router::RouterOptions options;
    for (std::size_t i = 0; i < shard_count; ++i) {
      shards.push_back(std::make_unique<server::Server>(
          server::ServerOptions{.jobs = kShardJobs}));
      const std::uint16_t shard_port = shards.back()->listen();
      shard_threads.emplace_back([srv = shards.back().get()] { srv->serve(); });
      options.shards.push_back(router::ShardAddress{"127.0.0.1", shard_port});
    }
    router = std::make_unique<router::Router>(std::move(options));
    port = router->listen();
    router_thread = std::thread([this] { router->serve(); });
  }

  ~Fleet() {
    router->shutdown();
    router_thread.join();
    for (std::size_t i = 0; i < shards.size(); ++i) {
      shards[i]->shutdown();
      shard_threads[i].join();
    }
  }
};

}  // namespace

int main() {
  const std::vector<core::Problem> grid = make_grid();
  const api::SolveRequest request;  // period over intervals, auto dispatch
  std::printf(
      "ROUTE: %zu requests over the Table 1/2 grid, %zu concurrent "
      "client(s), shards at %zu job(s) each\n\n",
      grid.size(), kClients, kShardJobs);

  // The bit-identity reference: per-call api::solve, wall-lessly canonical.
  std::vector<std::string> reference;
  reference.reserve(grid.size());
  for (const core::Problem& problem : grid) {
    reference.push_back(
        io::format_result(api::solve(problem, request), "", false));
  }

  std::vector<std::vector<std::string>> slices(kClients);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    slices[i % kClients].push_back(io::format_solve_request(grid[i], request));
  }
  std::size_t bad = 0;
  const auto drive_all = [&](std::uint16_t port) {
    std::vector<std::future<std::vector<std::string>>> clients;
    for (std::size_t c = 0; c < kClients; ++c) {
      clients.push_back(std::async(std::launch::async, drive_client, port,
                                   std::cref(slices[c])));
    }
    for (std::size_t c = 0; c < kClients; ++c) {
      const std::vector<std::string> responses = clients[c].get();
      for (std::size_t j = 0; j < responses.size(); ++j) {
        if (responses[j] != reference[c + j * kClients]) ++bad;
      }
    }
  };

  const double n = static_cast<double>(grid.size());
  util::Table table({"deployment", "wall", "req/s", "us/req", "vs 1 shard"});
  double one_shard_s = 0.0;

  // Baseline: one bare server, no router in the path.
  {
    server::Server server(server::ServerOptions{.jobs = kShardJobs});
    const std::uint16_t port = server.listen();
    std::thread accept_thread([&server] { server.serve(); });
    const util::Stopwatch watch;
    drive_all(port);
    const double seconds = watch.elapsed_seconds();
    server.shutdown();
    accept_thread.join();
    table.add_row({"bare server", util::format_double(seconds, 3) + "s",
                   util::format_double(n / seconds, 0),
                   util::format_double(1e6 * seconds / n, 1), "-"});
  }

  for (const std::size_t shard_count : {1u, 2u, 4u}) {
    Fleet fleet(shard_count);
    const util::Stopwatch watch;
    drive_all(fleet.port);
    const double seconds = watch.elapsed_seconds();
    if (shard_count == 1) one_shard_s = seconds;
    table.add_row({"router, " + std::to_string(shard_count) + " shard" +
                       (shard_count == 1 ? "" : "s"),
                   util::format_double(seconds, 3) + "s",
                   util::format_double(n / seconds, 0),
                   util::format_double(1e6 * seconds / n, 1),
                   util::format_double(one_shard_s / seconds, 2) + "x"});
  }
  std::fputs(table.render().c_str(), stdout);

  if (bad != 0) {
    std::printf("\nBIT-IDENTITY FAILED: %zu mismatching responses\n", bad);
    return 1;
  }
  std::printf(
      "\nbit-identity: all %zu wire responses in every deployment equal "
      "per-call api::solve\n(the router adds one relay hop; scaling past "
      "1 shard comes from independent accept\nloops and worker pools — "
      "bounded by cores, not by the router)\n\n",
      4 * grid.size());

  // Solver-bound traffic: exact-search-sized cells, where the relay hop is
  // noise against the solve itself. On a single core the router columns
  // converge to the bare server (the honest reading: zero overhead); with
  // cores to spare the per-shard pools turn the same numbers into 1->N
  // scaling.
  {
    CellShape heavy;
    heavy.applications = 2;
    heavy.min_stages = 4;
    heavy.max_stages = 6;
    heavy.processors = 8;
    std::vector<core::Problem> cells;
    util::Rng rng(20260809);
    for (const Column column : {Column::CommHom, Column::FullyHet}) {
      for (int i = 0; i < 6; ++i) {
        heavy.comm = (i % 2 == 0) ? core::CommModel::Overlap
                                  : core::CommModel::NoOverlap;
        cells.push_back(bench::make_instance(rng, column, heavy));
      }
    }
    std::vector<std::vector<std::string>> heavy_slices(kClients);
    for (std::size_t i = 0; i < cells.size(); ++i) {
      heavy_slices[i % kClients].push_back(
          io::format_solve_request(cells[i], request));
    }
    const auto drive_heavy = [&](std::uint16_t port) {
      std::vector<std::future<std::vector<std::string>>> clients;
      for (std::size_t c = 0; c < kClients; ++c) {
        clients.push_back(std::async(std::launch::async, drive_client, port,
                                     std::cref(heavy_slices[c])));
      }
      for (auto& client : clients) (void)client.get();
    };
    const double m = static_cast<double>(cells.size());
    std::printf("solver-bound cells (%zu exact-search requests):\n",
                cells.size());
    double bare_heavy_s = 0.0;
    {
      server::Server server(server::ServerOptions{.jobs = kShardJobs});
      const std::uint16_t port = server.listen();
      std::thread accept_thread([&server] { server.serve(); });
      const util::Stopwatch watch;
      drive_heavy(port);
      bare_heavy_s = watch.elapsed_seconds();
      server.shutdown();
      accept_thread.join();
    }
    std::printf("  bare server: %.0f us/req\n", 1e6 * bare_heavy_s / m);
    for (const std::size_t shard_count : {1u, 2u, 4u}) {
      Fleet fleet(shard_count);
      const util::Stopwatch watch;
      drive_heavy(fleet.port);
      const double seconds = watch.elapsed_seconds();
      std::printf("  router, %zu shard(s): %.0f us/req (%.2fx vs bare)\n",
                  shard_count, 1e6 * seconds / m, bare_heavy_s / seconds);
    }
  }
  return 0;
}
