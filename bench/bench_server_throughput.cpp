/// \file bench_server_throughput.cpp
/// Experiment SERVE: protocol overhead and sustained request rate of
/// pipeopt-server against the raw executor path.
///
/// Three measurements over the same request stream (Table 1/2 instance
/// grid, period objective, auto dispatch):
///
///  1. direct `api::solve` — no pool, no wire: the floor;
///  2. `Executor::solve_async` — the pool alone (what the server
///     multiplexes onto);
///  3. the full server loop — in-process `server::Server` on an ephemeral
///     port, real sockets, one JSONL request per solve, lock-step clients;
///  4. the same server loop with `--cache-entries` on, replayed twice:
///     the first pass populates the solve cache, the second is served
///     from it — the cache-on/cache-off column of the serving story.
///
/// The wire results of modes 3 and 4 are cross-checked bit-identical
/// against mode 1 (the server contract — the cache returns stored results
/// verbatim), and the per-request overhead of the serialization + socket
/// round trip is reported. Concurrency here means concurrent
/// *connections*; on a single-core container the rate is protocol-bound,
/// not solver-bound, which is exactly what this isolates.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "api/executor.hpp"
#include "api/registry.hpp"
#include "bench_support.hpp"
#include "io/request_io.hpp"
#include "io/result_io.hpp"
#include "server/server.hpp"
#include "util/fdio.hpp"
#include "util/table.hpp"
#include "util/timing.hpp"

namespace {

using namespace pipeopt;
using bench::CellShape;
using bench::Column;

constexpr int kInstancesPerColumn = 40;
constexpr std::size_t kClients = 2;

std::vector<core::Problem> make_grid() {
  CellShape shape;
  shape.applications = 2;
  shape.min_stages = 1;
  shape.max_stages = 3;
  shape.processors = 5;

  std::vector<core::Problem> problems;
  util::Rng rng(20260728);
  for (const Column column : {Column::FullyHom, Column::SpecialApp,
                              Column::CommHom, Column::FullyHet}) {
    for (int i = 0; i < kInstancesPerColumn; ++i) {
      shape.comm = (i % 2 == 0) ? core::CommModel::Overlap
                                : core::CommModel::NoOverlap;
      problems.push_back(bench::make_instance(rng, column, shape));
    }
  }
  return problems;
}

/// One lock-step client: sends its slice of request lines, collects the
/// wall-less comparable form of every response.
std::vector<std::string> drive_client(std::uint16_t port,
                                      const std::vector<std::string>& lines) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    std::perror("bench_server_throughput: connect");
    std::exit(1);
  }
  std::vector<std::string> responses;
  util::FdLineReader reader(fd);
  for (const std::string& line : lines) {
    std::string response;
    if (!util::write_line(fd, line) || !reader.next_line(response)) {
      std::fprintf(stderr, "bench_server_throughput: connection lost\n");
      std::exit(1);
    }
    responses.push_back(io::format_result(io::parse_result_line(response).result,
                                          "", /*include_wall=*/false));
  }
  ::close(fd);
  return responses;
}

}  // namespace

int main() {
  const std::vector<core::Problem> grid = make_grid();
  const api::SolveRequest request;  // period over intervals, auto dispatch
  std::printf("SERVE: %zu requests over the Table 1/2 grid, %zu client(s)\n\n",
              grid.size(), kClients);

  // Mode 1: direct api::solve, also the bit-identity reference.
  std::vector<std::string> reference;
  reference.reserve(grid.size());
  const util::Stopwatch direct_watch;
  for (const core::Problem& problem : grid) {
    reference.push_back(
        io::format_result(api::solve(problem, request), "", false));
  }
  const double direct_s = direct_watch.elapsed_seconds();

  // Mode 2: the executor pool alone.
  const double pool_s = [&] {
    api::Executor executor;
    std::vector<std::future<api::SolveResult>> futures;
    futures.reserve(grid.size());
    const util::Stopwatch watch;
    for (const core::Problem& problem : grid) {
      futures.push_back(executor.solve_async(problem, request));
    }
    for (auto& future : futures) (void)future.get();
    return watch.elapsed_seconds();
  }();

  // Modes 3 and 4: the full server loop over real sockets, cache off and
  // cache on (the cache-on server is driven twice: populate, then replay).
  std::vector<std::vector<std::string>> slices(kClients);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    slices[i % kClients].push_back(io::format_solve_request(grid[i], request));
  }
  const auto drive_all = [&](std::uint16_t port) {
    std::vector<std::future<std::vector<std::string>>> clients;
    for (std::size_t c = 0; c < kClients; ++c) {
      clients.push_back(std::async(std::launch::async, drive_client, port,
                                   std::cref(slices[c])));
    }
    std::vector<std::vector<std::string>> responses;
    for (auto& client : clients) responses.push_back(client.get());
    return responses;
  };
  // Bit-identity cross-check: every wire response equals its reference.
  const auto mismatches =
      [&](const std::vector<std::vector<std::string>>& responses) {
        std::size_t count = 0;
        for (std::size_t c = 0; c < kClients; ++c) {
          for (std::size_t j = 0; j < responses[c].size(); ++j) {
            if (responses[c][j] != reference[c + j * kClients]) ++count;
          }
        }
        return count;
      };

  double serve_s = 0.0, cached_cold_s = 0.0, cached_hit_s = 0.0;
  std::size_t bad = 0;
  {
    server::Server server;
    const std::uint16_t port = server.listen();
    std::thread accept_thread([&server] { server.serve(); });
    const util::Stopwatch watch;
    bad += mismatches(drive_all(port));
    serve_s = watch.elapsed_seconds();
    server.shutdown();
    accept_thread.join();
  }
  {
    // 4x headroom over the working set, like every other cache site: a
    // per-shard LRU overflows early under an uneven key-hash split if the
    // capacity is exactly the key count.
    server::Server server(
        server::ServerOptions{.cache_entries = 4 * grid.size()});
    const std::uint16_t port = server.listen();
    std::thread accept_thread([&server] { server.serve(); });
    const util::Stopwatch cold_watch;
    bad += mismatches(drive_all(port));
    cached_cold_s = cold_watch.elapsed_seconds();
    const util::Stopwatch hit_watch;
    bad += mismatches(drive_all(port));
    cached_hit_s = hit_watch.elapsed_seconds();
    server.shutdown();
    accept_thread.join();
  }
  if (bad != 0) {
    std::printf("BIT-IDENTITY FAILED: %zu mismatching responses\n", bad);
    return 1;
  }

  const double n = static_cast<double>(grid.size());
  util::Table table({"mode", "wall", "req/s", "us/req"});
  const auto row = [&](const char* mode, double seconds) {
    table.add_row({mode, util::format_double(seconds, 3) + "s",
                   util::format_double(n / seconds, 0),
                   util::format_double(1e6 * seconds / n, 1)});
  };
  row("direct api::solve", direct_s);
  row("executor pool", pool_s);
  row("server, cache off", serve_s);
  row("server, cache on (populate)", cached_cold_s);
  row("server, cache on (replay)", cached_hit_s);
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nprotocol overhead: %.1f us/request over the pool path "
      "(serialize + socket + watch loop)\ncache replay speedup over the "
      "cache-off server: %.1fx (this grid is protocol-bound: ~8 us "
      "solves\nbehind a ~40 us wire, so the wire is the cache's floor)\n"
      "bit-identity: all %zu wire responses (all modes, replays included) "
      "equal per-call api::solve\n\n",
      1e6 * (serve_s - pool_s) / n, serve_s / cached_hit_s, grid.size());

  // Heavy cells, where caching pays at the server level too: the same
  // replay experiment over exact-search-sized instances (the
  // bench_solve_cache shape) — solver-bound traffic, so the replay
  // collapses to the wire cost.
  {
    CellShape heavy;
    heavy.applications = 2;
    heavy.min_stages = 4;
    heavy.max_stages = 6;
    heavy.processors = 8;
    std::vector<core::Problem> cells;
    util::Rng rng(20260729);
    for (const Column column : {Column::CommHom, Column::FullyHet}) {
      for (int i = 0; i < 8; ++i) {
        heavy.comm = (i % 2 == 0) ? core::CommModel::Overlap
                                  : core::CommModel::NoOverlap;
        cells.push_back(bench::make_instance(rng, column, heavy));
      }
    }
    std::vector<std::string> lines;
    for (const core::Problem& problem : cells) {
      lines.push_back(io::format_solve_request(problem, request));
    }
    const auto measure = [&](std::uint16_t port) {
      const util::Stopwatch watch;
      (void)drive_client(port, lines);
      return watch.elapsed_seconds();
    };
    double heavy_off = 0.0, heavy_populate = 0.0, heavy_replay = 0.0;
    {
      server::Server off;
      const std::uint16_t port = off.listen();
      std::thread accept_thread([&off] { off.serve(); });
      heavy_off = measure(port);
      off.shutdown();
      accept_thread.join();
    }
    {
      server::Server on(server::ServerOptions{.cache_entries = 4 * cells.size()});
      const std::uint16_t port = on.listen();
      std::thread accept_thread([&on] { on.serve(); });
      heavy_populate = measure(port);
      heavy_replay = measure(port);
      on.shutdown();
      accept_thread.join();
    }
    const double m = static_cast<double>(cells.size());
    std::printf(
        "heavy cells (%zu exact-search requests over TCP):\n"
        "  cache off %.0f us/req | populate %.0f us/req | replay %.0f "
        "us/req -> %.1fx over cache off\n",
        cells.size(), 1e6 * heavy_off / m, 1e6 * heavy_populate / m,
        1e6 * heavy_replay / m, heavy_off / heavy_replay);
  }
  return 0;
}
