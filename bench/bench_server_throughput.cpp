/// \file bench_server_throughput.cpp
/// Experiment SERVE: protocol overhead and sustained request rate of
/// pipeopt-server against the raw executor path.
///
/// Three measurements over the same request stream (Table 1/2 instance
/// grid, period objective, auto dispatch):
///
///  1. direct `api::solve` — no pool, no wire: the floor;
///  2. `Executor::solve_async` — the pool alone (what the server
///     multiplexes onto);
///  3. the full server loop — in-process `server::Server` on an ephemeral
///     port, real sockets, one JSONL request per solve, lock-step clients.
///
/// The wire results of mode 3 are cross-checked bit-identical against
/// mode 1 (the server contract), and the per-request overhead of the
/// serialization + socket round trip is reported. Concurrency here means
/// concurrent *connections*; on a single-core container the rate is
/// protocol-bound, not solver-bound, which is exactly what this isolates.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "api/executor.hpp"
#include "api/registry.hpp"
#include "bench_support.hpp"
#include "io/request_io.hpp"
#include "io/result_io.hpp"
#include "server/server.hpp"
#include "util/fdio.hpp"
#include "util/table.hpp"
#include "util/timing.hpp"

namespace {

using namespace pipeopt;
using bench::CellShape;
using bench::Column;

constexpr int kInstancesPerColumn = 40;
constexpr std::size_t kClients = 2;

std::vector<core::Problem> make_grid() {
  CellShape shape;
  shape.applications = 2;
  shape.min_stages = 1;
  shape.max_stages = 3;
  shape.processors = 5;

  std::vector<core::Problem> problems;
  util::Rng rng(20260728);
  for (const Column column : {Column::FullyHom, Column::SpecialApp,
                              Column::CommHom, Column::FullyHet}) {
    for (int i = 0; i < kInstancesPerColumn; ++i) {
      shape.comm = (i % 2 == 0) ? core::CommModel::Overlap
                                : core::CommModel::NoOverlap;
      problems.push_back(bench::make_instance(rng, column, shape));
    }
  }
  return problems;
}

/// One lock-step client: sends its slice of request lines, collects the
/// wall-less comparable form of every response.
std::vector<std::string> drive_client(std::uint16_t port,
                                      const std::vector<std::string>& lines) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    std::perror("bench_server_throughput: connect");
    std::exit(1);
  }
  std::vector<std::string> responses;
  util::FdLineReader reader(fd);
  for (const std::string& line : lines) {
    std::string response;
    if (!util::write_line(fd, line) || !reader.next_line(response)) {
      std::fprintf(stderr, "bench_server_throughput: connection lost\n");
      std::exit(1);
    }
    responses.push_back(io::format_result(io::parse_result_line(response).result,
                                          "", /*include_wall=*/false));
  }
  ::close(fd);
  return responses;
}

}  // namespace

int main() {
  const std::vector<core::Problem> grid = make_grid();
  const api::SolveRequest request;  // period over intervals, auto dispatch
  std::printf("SERVE: %zu requests over the Table 1/2 grid, %zu client(s)\n\n",
              grid.size(), kClients);

  // Mode 1: direct api::solve, also the bit-identity reference.
  std::vector<std::string> reference;
  reference.reserve(grid.size());
  const util::Stopwatch direct_watch;
  for (const core::Problem& problem : grid) {
    reference.push_back(
        io::format_result(api::solve(problem, request), "", false));
  }
  const double direct_s = direct_watch.elapsed_seconds();

  // Mode 2: the executor pool alone.
  const double pool_s = [&] {
    api::Executor executor;
    std::vector<std::future<api::SolveResult>> futures;
    futures.reserve(grid.size());
    const util::Stopwatch watch;
    for (const core::Problem& problem : grid) {
      futures.push_back(executor.solve_async(problem, request));
    }
    for (auto& future : futures) (void)future.get();
    return watch.elapsed_seconds();
  }();

  // Mode 3: the full server loop over real sockets.
  server::Server server;
  const std::uint16_t port = server.listen();
  std::thread accept_thread([&server] { server.serve(); });

  std::vector<std::vector<std::string>> slices(kClients);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    slices[i % kClients].push_back(io::format_solve_request(grid[i], request));
  }
  std::vector<std::future<std::vector<std::string>>> clients;
  const util::Stopwatch serve_watch;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.push_back(std::async(std::launch::async, drive_client, port,
                                 std::cref(slices[c])));
  }
  std::vector<std::vector<std::string>> responses;
  for (auto& client : clients) responses.push_back(client.get());
  const double serve_s = serve_watch.elapsed_seconds();
  server.shutdown();
  accept_thread.join();

  // Bit-identity cross-check: every wire response equals its reference.
  std::size_t mismatches = 0;
  for (std::size_t c = 0; c < kClients; ++c) {
    for (std::size_t j = 0; j < responses[c].size(); ++j) {
      if (responses[c][j] != reference[c + j * kClients]) ++mismatches;
    }
  }
  if (mismatches != 0) {
    std::printf("BIT-IDENTITY FAILED: %zu mismatching responses\n", mismatches);
    return 1;
  }

  const double n = static_cast<double>(grid.size());
  util::Table table({"mode", "wall", "req/s", "us/req"});
  const auto row = [&](const char* mode, double seconds) {
    table.add_row({mode, util::format_double(seconds, 3) + "s",
                   util::format_double(n / seconds, 0),
                   util::format_double(1e6 * seconds / n, 1)});
  };
  row("direct api::solve", direct_s);
  row("executor pool", pool_s);
  row("server (JSONL/TCP)", serve_s);
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nprotocol overhead: %.1f us/request over the pool path "
      "(serialize + socket + watch loop)\nbit-identity: all %zu wire "
      "responses equal per-call api::solve\n",
      1e6 * (serve_s - pool_s) / n, grid.size());
  return 0;
}
