/// \file bench_batch_throughput.cpp
/// Experiment BATCH: dispatch amortization and pool scaling of the
/// plan/execute split over the Table 1/2 instance grid.
///
/// Three measurements over the same instance stream (all four platform
/// columns, both communication models, period objective):
///
///  1. per-call `api::solve` — plans rebuilt on every call (the PR 1
///     facade behavior);
///  2. `Executor::solve_batch` with jobs=1 — one DispatchPlan for the whole
///     batch, serial execution: isolates the planning amortization;
///  3. `Executor::solve_batch` with a hardware-sized pool — adds the
///     worker-pool scaling.
///
/// A fourth experiment isolates plan *reuse* on one instance: the Stretch
/// weight policy resolves per-application solo optima at plan time, so
/// executing one SolvePlan k times pays them once while k `api::solve`
/// calls pay them k times.
///
/// Every mode's values are cross-checked against mode 1 — the batch path
/// must be bit-identical to per-call dispatch.

#include <cstdio>
#include <thread>
#include <vector>

#include "api/executor.hpp"
#include "api/registry.hpp"
#include "bench_support.hpp"
#include "util/table.hpp"

namespace {

using namespace pipeopt;
using bench::CellShape;
using bench::Column;

constexpr int kInstancesPerColumn = 60;

std::vector<core::Problem> make_grid() {
  CellShape shape;
  shape.applications = 2;
  shape.min_stages = 1;
  shape.max_stages = 4;
  shape.processors = 5;

  std::vector<core::Problem> problems;
  util::Rng rng(20260728);
  for (const Column column : {Column::FullyHom, Column::SpecialApp,
                              Column::CommHom, Column::FullyHet}) {
    for (int i = 0; i < kInstancesPerColumn; ++i) {
      shape.comm = (i % 2 == 0) ? core::CommModel::Overlap
                                : core::CommModel::NoOverlap;
      problems.push_back(bench::make_instance(rng, column, shape));
    }
  }
  return problems;
}

/// Values of a result stream, for bit-identity cross-checks.
std::size_t mismatches(const std::vector<api::SolveResult>& a,
                       const std::vector<api::SolveResult>& b) {
  std::size_t count = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    // Bit-identical means identical: same solver, same status, same value,
    // no tolerance.
    if (a[i].status != b[i].status || a[i].solver != b[i].solver ||
        a[i].value != b[i].value) {
      ++count;
    }
  }
  return count;
}

}  // namespace

int main() {
  std::puts("=== BATCH: plan/execute amortization over the Table 1/2 grid ===");
  const std::vector<core::Problem> grid = make_grid();
  api::SolveRequest request;  // defaults: weighted period, interval, auto

  // Mode 1: per-call facade dispatch.
  util::Stopwatch watch;
  std::vector<api::SolveResult> per_call;
  per_call.reserve(grid.size());
  for (const core::Problem& problem : grid) {
    per_call.push_back(api::solve(problem, request));
  }
  const double per_call_s = watch.elapsed_seconds();

  // Mode 2: one dispatch plan, serial pool.
  api::Executor serial(api::ExecutorOptions{.jobs = 1});
  watch.reset();
  const api::BatchResult planned = serial.solve_batch(grid, request);
  const double planned_s = watch.elapsed_seconds();

  // Mode 3: one dispatch plan, hardware pool.
  api::Executor pool(api::ExecutorOptions{});
  watch.reset();
  const api::BatchResult parallel = pool.solve_batch(grid, request);
  const double parallel_s = watch.elapsed_seconds();

  util::Table table({"mode", "plans", "wall", "solves/s", "speedup"});
  const auto row = [&](const char* mode, std::size_t plans, double seconds) {
    table.add_row({mode, std::to_string(plans),
                   util::format_double(seconds, 3) + "s",
                   util::format_double(grid.size() / seconds, 0),
                   util::format_double(per_call_s / seconds, 2) + "x"});
  };
  row("per-call api::solve", grid.size(), per_call_s);
  row("solve_batch jobs=1", planned.dispatch_plans, planned_s);
  row(("solve_batch jobs=" + std::to_string(pool.jobs())).c_str(),
      parallel.dispatch_plans, parallel_s);
  std::fputs(table.render().c_str(), stdout);
  std::printf("bit-identity: %zu mismatches serial, %zu parallel (want 0/0)\n",
              mismatches(per_call, planned.results),
              mismatches(per_call, parallel.results));

  // Plan-reuse experiment: Stretch weights pay their per-application solo
  // solves at plan time, so one plan executed k times amortizes them. A
  // fully-heterogeneous instance makes the solo solves genuinely expensive
  // (they dispatch to exact search).
  constexpr int kRepeats = 200;
  api::SolveRequest stretch = request;
  stretch.weights = core::WeightPolicy::Stretch;
  const core::Problem& instance = grid[3 * kInstancesPerColumn];  // FullyHet

  watch.reset();
  double checksum_calls = 0.0;
  for (int i = 0; i < kRepeats; ++i) {
    checksum_calls += api::solve(instance, stretch).value;
  }
  const double calls_s = watch.elapsed_seconds();

  watch.reset();
  const api::SolvePlan plan = api::default_registry().plan(instance, stretch);
  double checksum_plan = 0.0;
  for (int i = 0; i < kRepeats; ++i) {
    checksum_plan += plan.execute().value;
  }
  const double reuse_s = watch.elapsed_seconds();

  std::printf(
      "\nplan reuse (stretch weights, %d executions of one com-het instance):\n"
      "  per-call %.2fms (%.1fus/solve) vs plan+execute %.2fms (%.1fus/solve)"
      " -> %.1fx; values %s\n",
      kRepeats, calls_s * 1e3, calls_s * 1e6 / kRepeats, reuse_s * 1e3,
      reuse_s * 1e6 / kRepeats, calls_s / reuse_s,
      checksum_calls == checksum_plan ? "identical" : "MISMATCH");
  return 0;
}
