/// \file bench_replication.cpp
/// Experiment REP (extension): the §6 future-work ablation — how much does
/// stage replication improve the period over plain interval mappings as
/// processors are added? On bottleneck-dominated chains the unreplicated
/// period flattens at the dominant stage's cycle-time, while replication
/// keeps scaling (the [4] effect the paper anticipates).

#include <cstdio>

#include "algorithms/interval_period_multi.hpp"
#include "core/evaluation.hpp"
#include "gen/workloads.hpp"
#include "replication/replicated_period.hpp"
#include "util/table.hpp"

int main() {
  using namespace pipeopt;

  std::puts("=== REP: replication ablation (§6 future work, after [4]) ===\n");

  // A bottleneck-dominated chain: video transcode (encode stage dominates).
  std::vector<core::Application> apps{gen::video_transcode_app(4.0)};

  util::Table table({"processors", "interval period", "replicated period",
                     "speedup", "max replicas used"});
  for (std::size_t p = 1; p <= 16; p *= 2) {
    const core::Platform cluster =
        gen::homogeneous_cluster(p, 1, 4.0, 1.0, 16.0, 0.0);
    const core::Problem problem(apps, cluster, core::CommModel::Overlap);
    const auto plain = algorithms::interval_min_period(problem);
    const auto replicated = replication::replicated_min_period(problem);
    if (!plain || !replicated) continue;
    std::size_t max_r = 0;
    for (const auto& iv : replicated->mapping.intervals()) {
      max_r = std::max(max_r, iv.replication());
    }
    table.add_row({std::to_string(p), util::format_double(plain->value, 4),
                   util::format_double(replicated->value, 4),
                   util::format_double(plain->value / replicated->value, 2) + "x",
                   std::to_string(max_r)});
  }
  std::fputs(table.render().c_str(), stdout);

  std::puts("\nUnreplicated mappings flatten at the dominant stage's");
  std::puts("cycle-time; replication keeps converting processors into");
  std::puts("throughput (at proportional energy cost).");

  // Energy cost of the replication speedup at p = 8.
  const core::Platform cluster = gen::homogeneous_cluster(8, 1, 4.0, 1.0, 16.0, 0.5);
  const core::Problem problem(apps, cluster, core::CommModel::Overlap);
  const auto plain = algorithms::interval_min_period(problem);
  const auto replicated = replication::replicated_min_period(problem);
  if (plain && replicated) {
    const auto plain_metrics = core::evaluate(problem, plain->mapping);
    const auto rep_metrics = replication::evaluate(problem, replicated->mapping);
    std::printf(
        "\nAt p=8: period %.3f -> %.3f, energy %.1f -> %.1f "
        "(throughput/energy tradeoff: %.2fx speedup for %.2fx energy)\n",
        plain->value, replicated->value, plain_metrics.energy,
        rep_metrics.energy, plain->value / replicated->value,
        rep_metrics.energy / plain_metrics.energy);
  }
  return 0;
}
