/// \file bench_solve_cache.cpp
/// Experiment CACHE: redundant-work elimination on replayed traffic.
///
/// The serving layer's hottest waste is byte-identical requests solved from
/// scratch — a manifest replayed, a dashboard polling the same sweep, a
/// fleet of clients asking for the same Table 1/2 cells. Two measurements:
///
///  1. **Grid replay** — the Table 1/2 instance grid solved through
///     `Executor::solve_async` three ways: cache-off replay (every round
///     solves), cache-on first pass (all misses: solve + store), cache-on
///     replay (all hits: canonical-key format + one shard probe). The
///     headline number is the off-vs-hit replay speedup; the PR gate is
///     >= 10x.
///  2. **Sweep replay** — the same `Executor::sweep` twice with the cache
///     on: the replayed front is served point by point from the cache and
///     must be byte-identical (stored wall times included) to the first.
///
/// Every hit is cross-checked byte-identical to the cache-off result
/// (wall-lessly), so the speedup never comes at the cost of the facade's
/// bit-identity contract.

#include <cstdio>
#include <future>
#include <string>
#include <vector>

#include "api/executor.hpp"
#include "api/registry.hpp"
#include "api/sweep.hpp"
#include "bench_support.hpp"
#include "gen/motivating_example.hpp"
#include "io/result_io.hpp"
#include "util/table.hpp"
#include "util/timing.hpp"

namespace {

using namespace pipeopt;
using bench::CellShape;
using bench::Column;

constexpr int kInstancesPerColumn = 6;
constexpr int kReplayRounds = 5;

std::vector<core::Problem> make_grid() {
  // Chunkier cells than the throughput bench: the heterogeneous columns
  // land in exact search (the traffic worth caching — a replayed 10 us DP
  // solve costs about as much as the canonical-key bytes themselves).
  CellShape shape;
  shape.applications = 2;
  shape.min_stages = 4;
  shape.max_stages = 6;
  shape.processors = 8;

  std::vector<core::Problem> problems;
  util::Rng rng(20260728);
  for (const Column column : {Column::FullyHom, Column::SpecialApp,
                              Column::CommHom, Column::FullyHet}) {
    for (int i = 0; i < kInstancesPerColumn; ++i) {
      shape.comm = (i % 2 == 0) ? core::CommModel::Overlap
                                : core::CommModel::NoOverlap;
      problems.push_back(bench::make_instance(rng, column, shape));
    }
  }
  return problems;
}

/// One full pass of the grid through the executor; returns wall seconds and
/// collects the wall-less comparable lines.
double replay_once(api::Executor& executor,
                   const std::vector<core::Problem>& grid,
                   const api::SolveRequest& request,
                   std::vector<std::string>* lines) {
  std::vector<std::future<api::SolveResult>> futures;
  futures.reserve(grid.size());
  const util::Stopwatch watch;
  for (const core::Problem& problem : grid) {
    futures.push_back(executor.solve_async(problem, request));
  }
  if (lines != nullptr) lines->clear();
  for (auto& future : futures) {
    const api::SolveResult result = future.get();
    if (lines != nullptr) {
      lines->push_back(io::format_result(result, "", /*include_wall=*/false));
    }
  }
  return watch.elapsed_seconds();
}

}  // namespace

int main() {
  const std::vector<core::Problem> grid = make_grid();
  const api::SolveRequest request;  // period over intervals, auto dispatch
  const double n = static_cast<double>(grid.size());
  std::printf("CACHE: %zu requests over the Table 1/2 grid, %d replay "
              "round(s)\n\n", grid.size(), kReplayRounds);

  // --- 1. Grid replay: cache off vs cache on. ------------------------------
  api::Executor uncached(api::ExecutorOptions{.jobs = 1});
  // Headroom over the working set: per-shard LRUs overflow early under an
  // uneven key-hash split if the capacity is exactly the key count.
  api::Executor cached(
      api::ExecutorOptions{.jobs = 1, .cache_entries = 4 * grid.size()});

  std::vector<std::string> reference;
  double off_s = 0.0;
  for (int round = 0; round < kReplayRounds; ++round) {
    off_s += replay_once(uncached, grid, request, &reference);
  }
  off_s /= kReplayRounds;

  std::vector<std::string> first_pass;
  const double miss_s = replay_once(cached, grid, request, &first_pass);

  std::vector<std::string> replay;
  double hit_s = 0.0;
  for (int round = 0; round < kReplayRounds; ++round) {
    hit_s += replay_once(cached, grid, request, &replay);
  }
  hit_s /= kReplayRounds;

  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    if (first_pass[i] != reference[i] || replay[i] != reference[i]) {
      ++mismatches;
    }
  }
  if (mismatches != 0) {
    std::printf("BIT-IDENTITY FAILED: %zu cached responses diverged\n",
                mismatches);
    return 1;
  }

  util::Table table({"mode", "wall", "req/s", "us/req"});
  const auto row = [&](const char* mode, double seconds) {
    table.add_row({mode, util::format_double(seconds, 4) + "s",
                   util::format_double(n / seconds, 0),
                   util::format_double(1e6 * seconds / n, 2)});
  };
  row("cache off (replay)", off_s);
  row("cache on, first pass (miss+store)", miss_s);
  row("cache on, replay (hits)", hit_s);
  std::fputs(table.render().c_str(), stdout);

  const api::CacheCounters counters = cached.cache()->counters();
  const double speedup = off_s / hit_s;
  std::printf(
      "\ncounters: %llu hits, %llu misses, %llu evictions, %zu/%zu entries\n"
      "grid-replay speedup (off vs hit): %.1fx — gate >= 10x: %s\n"
      "bit-identity: all %zu cached responses equal the cache-off results\n\n",
      static_cast<unsigned long long>(counters.hits),
      static_cast<unsigned long long>(counters.misses),
      static_cast<unsigned long long>(counters.evictions), counters.entries,
      counters.capacity, speedup, speedup >= 10.0 ? "PASS" : "FAIL",
      grid.size());

  // --- 2. Sweep replay: the paper's bicriteria workflow, repeated. ---------
  {
    api::Executor sweeper(api::ExecutorOptions{.jobs = 1, .cache_entries = 256});
    api::SweepRequest sweep;  // defaults: minimize energy, sweep period
    sweep.bounds = {1.0, 1.5, 2.0, 3.0, 4.0, 7.0, 14.0};
    sweep.refine = 2;
    const core::Problem problem = gen::motivating_example();

    const util::Stopwatch cold_watch;
    const api::ParetoFront cold = sweeper.sweep(problem, sweep);
    const double cold_s = cold_watch.elapsed_seconds();
    const util::Stopwatch warm_watch;
    const api::ParetoFront warm = sweeper.sweep(problem, sweep);
    const double warm_s = warm_watch.elapsed_seconds();

    std::size_t diverged = 0;
    for (std::size_t i = 0; i < cold.evaluations.size(); ++i) {
      // Verbatim: the replayed sweep returns the stored results, honest
      // wall times and all.
      if (io::format_result(warm.evaluations[i].result, "", true) !=
          io::format_result(cold.evaluations[i].result, "", true)) {
        ++diverged;
      }
    }
    std::printf(
        "sweep replay (%zu grid points, %zu front): first %.4fs, replay "
        "%.4fs (%.1fx), %zu diverged line(s)\n",
        cold.evaluations.size(), cold.front.size(), cold_s, warm_s,
        cold_s / warm_s, diverged);
    if (diverged != 0) return 1;
  }
  return 0;
}
