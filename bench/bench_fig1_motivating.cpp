/// \file bench_fig1_motivating.cpp
/// Experiment FIG1: regenerates every number of the paper's §2 motivating
/// example (Figure 1 instance) and cross-checks the optimal mappings in the
/// pipeline simulator. All values must match the paper exactly.

#include <cstdio>

#include "algorithms/latency_algorithms.hpp"
#include "core/evaluation.hpp"
#include "exact/exact_solvers.hpp"
#include "gen/motivating_example.hpp"
#include "sim/simulator.hpp"
#include "util/table.hpp"

int main() {
  using namespace pipeopt;
  using gen::MotivatingExampleFacts;

  std::puts("=== FIG1: paper §2 motivating example (Figure 1 instance) ===\n");
  const core::Problem problem = gen::motivating_example();

  struct Row {
    const char* quantity;
    double paper;
    double measured;
    const char* method;
  };
  std::vector<Row> rows;

  const auto period = exact::exact_min_period(problem, exact::MappingKind::Interval);
  rows.push_back({"optimal period (Eq. 1)", MotivatingExampleFacts::kOptimalPeriod,
                  period->value, "exact search (NP-hard cell, Thm 4)"});

  const auto energy_at_t1 = exact::exact_min_energy_under_period(
      problem, exact::MappingKind::Interval, core::Thresholds::per_app({1.0, 1.0}));
  rows.push_back({"energy at period 1",
                  MotivatingExampleFacts::kEnergyAtOptimalPeriod,
                  energy_at_t1->value, "exact search"});

  const auto latency = algorithms::interval_min_latency(problem);
  rows.push_back({"optimal latency (Eq. 2)",
                  MotivatingExampleFacts::kOptimalLatency, latency->value,
                  "Theorem 12 greedy + binary search"});

  const auto min_energy = exact::exact_min_energy_under_period(
      problem, exact::MappingKind::Interval, core::Thresholds::unconstrained(2));
  rows.push_back({"minimal energy", MotivatingExampleFacts::kMinimalEnergy,
                  min_energy->value, "exact search"});

  const auto period_at_min_e =
      core::evaluate(problem, min_energy->mapping).max_weighted_period;
  rows.push_back({"period at minimal energy",
                  MotivatingExampleFacts::kPeriodAtMinimalEnergy, period_at_min_e,
                  "evaluation of the witness mapping"});

  const auto tradeoff = exact::exact_min_energy_under_period(
      problem, exact::MappingKind::Interval, core::Thresholds::per_app({2.0, 2.0}));
  rows.push_back({"energy under period <= 2",
                  MotivatingExampleFacts::kEnergyUnderPeriod2, tradeoff->value,
                  "exact search"});

  util::Table table({"quantity", "paper", "measured", "match", "method"});
  bool all_match = true;
  for (const Row& row : rows) {
    const bool match = row.paper == row.measured;
    all_match = all_match && match;
    table.add_row({row.quantity, util::format_double(row.paper),
                   util::format_double(row.measured), match ? "yes" : "NO",
                   row.method});
  }
  std::fputs(table.render().c_str(), stdout);

  // Simulator cross-check: the period-optimal mapping must sustain period 1
  // in actual pipelined execution (Eq. 3 regime).
  sim::SimConfig config;
  config.datasets = 64;
  const auto sim_result = sim::simulate(problem, period->mapping, config);
  std::puts("\nSimulator cross-check of the period-optimal mapping:");
  for (std::size_t a = 0; a < sim_result.apps.size(); ++a) {
    std::printf("  %s: measured steady period %.9f (analytic 1.0)\n",
                problem.application(a).name().c_str(),
                sim_result.apps[a].steady_period);
    all_match = all_match &&
                std::abs(sim_result.apps[a].steady_period - 1.0) < 1e-9;
  }

  std::printf("\nFIG1 verdict: %s\n", all_match ? "REPRODUCED (exact match)"
                                                : "MISMATCH — see table");
  return all_match ? 0 : 1;
}
