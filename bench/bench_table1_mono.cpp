/// \file bench_table1_mono.cpp
/// Experiment TAB1: reproduces Table 1 (mono-criterion complexity matrix).
///
/// For every (problem, platform-column) cell:
///  * cells the paper proves polynomial — run the paper's algorithm against
///    the exhaustive oracle on random instances (it must be optimal on all
///    of them) and report its wall-clock;
///  * cells the paper proves NP-complete — report the exhaustive solver's
///    node counts as the instance grows (the exponential wall) and the gap
///    of a polynomial heuristic against the exact optimum.
///
/// Both communication models are exercised (instances alternate).

#include <cstdio>
#include <functional>
#include <optional>

#include "algorithms/interval_period_multi.hpp"
#include "algorithms/latency_algorithms.hpp"
#include "algorithms/one_to_one_period.hpp"
#include "bench_support.hpp"
#include "util/numeric.hpp"
#include "core/evaluation.hpp"
#include "exact/exact_solvers.hpp"
#include "heuristics/interval_greedy.hpp"
#include "heuristics/list_heuristics.hpp"
#include "heuristics/local_search.hpp"
#include "util/table.hpp"

namespace {

using namespace pipeopt;
using bench::CellShape;
using bench::Column;

constexpr int kPolyInstances = 30;
constexpr int kHardInstances = 10;

/// Runs a polynomial algorithm against the exhaustive oracle.
/// `algo` returns the algorithm's optimal value (nullopt = infeasible);
/// `kind` selects the oracle's mapping family.
std::string poly_cell(
    std::uint64_t seed, Column column, CellShape shape, exact::MappingKind kind,
    exact::Objective objective,
    const std::function<std::optional<double>(const core::Problem&)>& algo) {
  util::Rng rng(seed);
  bench::CellReport report;
  for (int i = 0; i < kPolyInstances; ++i) {
    shape.comm = (i % 2 == 0) ? core::CommModel::Overlap
                              : core::CommModel::NoOverlap;
    const auto problem = bench::make_instance(rng, column, shape);

    util::Stopwatch watch;
    const auto fast = algo(problem);
    report.algo_us.add(watch.elapsed_micros());

    exact::EnumerationOptions options;
    options.kind = kind;
    const auto oracle = exact::exact_minimize(problem, options, objective);
    if (fast.has_value() != oracle.has_value()) continue;  // counted as miss
    ++report.total;
    if (!fast || util::approx_eq(*fast, oracle->value)) ++report.optimal;
  }
  char buf[128];
  std::snprintf(buf, sizeof(buf), "poly: optimal %s, median %.0fus",
                report.optimality().c_str(), report.algo_us.median());
  return buf;
}

/// Exact-blowup + heuristic-gap evidence for an NP-complete cell.
/// `heuristic` returns the heuristic objective value for an instance.
std::string hard_cell(
    std::uint64_t seed, Column column, CellShape shape, exact::MappingKind kind,
    exact::Objective objective,
    const std::function<std::optional<double>(const core::Problem&)>& heuristic) {
  util::Rng rng(seed);
  bench::CellReport report;
  util::Summary nodes;
  for (int i = 0; i < kHardInstances; ++i) {
    shape.comm = (i % 2 == 0) ? core::CommModel::Overlap
                              : core::CommModel::NoOverlap;
    const auto problem = bench::make_instance(rng, column, shape);
    exact::EnumerationOptions options;
    options.kind = kind;
    const auto oracle = exact::exact_minimize(problem, options, objective);
    if (!oracle) continue;
    nodes.add(static_cast<double>(oracle->stats.nodes));
    const auto value = heuristic(problem);
    if (!value) continue;
    ++report.total;
    report.gap.add(*value / oracle->value);
    if (util::approx_eq(*value, oracle->value)) ++report.optimal;
  }
  char buf[160];
  if (report.total == 0) {
    std::snprintf(buf, sizeof(buf), "NP-c: exact median %.0f nodes", nodes.median());
  } else {
    std::snprintf(buf, sizeof(buf),
                  "NP-c: exact median %.0f nodes; heuristic gap med %.3fx "
                  "(opt %s)",
                  nodes.median(), report.gap.median(),
                  report.optimality().c_str());
  }
  return buf;
}

/// Heuristics used as polynomial baselines in the hard cells.
std::optional<double> heuristic_period_interval(const core::Problem& problem) {
  const auto start = heuristics::greedy_interval_mapping(problem);
  if (!start) return std::nullopt;
  return heuristics::local_search(problem, *start, heuristics::Goal::Period)
      .value;
}
std::optional<double> heuristic_latency_interval(const core::Problem& problem) {
  const auto start = heuristics::greedy_interval_mapping(problem);
  if (!start) return std::nullopt;
  return heuristics::local_search(problem, *start, heuristics::Goal::Latency)
      .value;
}
std::optional<double> heuristic_period_one_to_one(const core::Problem& problem) {
  const auto mapping = heuristics::one_to_one_rank_matching(problem);
  if (!mapping) return std::nullopt;
  return core::evaluate(problem, *mapping).max_weighted_period;
}
std::optional<double> heuristic_latency_one_to_one(const core::Problem& problem) {
  const auto mapping = heuristics::one_to_one_rank_matching(problem);
  if (!mapping) return std::nullopt;
  return core::evaluate(problem, *mapping).max_weighted_latency;
}

}  // namespace

int main() {
  std::puts("=== TAB1: Table 1 — mono-criterion complexity matrix ===");
  std::puts("(poly cells: algorithm vs exhaustive oracle; NP-c cells: exact");
  std::puts(" node counts + polynomial-heuristic gap)\n");

  CellShape small;          // shared by one-to-one rows (p >= N needed)
  small.applications = 2;
  small.min_stages = 1;
  small.max_stages = 3;
  small.processors = 6;

  CellShape interval_shape = small;  // interval rows can be denser
  interval_shape.max_stages = 4;
  interval_shape.processors = 5;

  util::Table table({"problem", bench::to_string(Column::FullyHom),
                     bench::to_string(Column::SpecialApp),
                     bench::to_string(Column::CommHom),
                     bench::to_string(Column::FullyHet)});

  // --- Row 1: Period, one-to-one (Thm 1 poly; Thm 2 NP-c on com-het). ----
  const auto one_to_one_period = [](const core::Problem& p) {
    const auto s = algorithms::one_to_one_min_period(p);
    return s ? std::optional<double>(s->value) : std::nullopt;
  };
  table.add_row(
      {"Period 1-to-1",
       poly_cell(11, Column::FullyHom, small, exact::MappingKind::OneToOne,
                 exact::Objective::Period, one_to_one_period),
       poly_cell(12, Column::SpecialApp, small, exact::MappingKind::OneToOne,
                 exact::Objective::Period, one_to_one_period),
       poly_cell(13, Column::CommHom, small, exact::MappingKind::OneToOne,
                 exact::Objective::Period, one_to_one_period),
       hard_cell(14, Column::FullyHet, small, exact::MappingKind::OneToOne,
                 exact::Objective::Period, heuristic_period_one_to_one)});

  // --- Row 2: Period, interval (Thm 3 poly on FH; Thms 4-5 NP-c). --------
  const auto interval_period = [](const core::Problem& p) {
    const auto s = algorithms::interval_min_period(p);
    return s ? std::optional<double>(s->value) : std::nullopt;
  };
  table.add_row(
      {"Period interval",
       poly_cell(21, Column::FullyHom, interval_shape,
                 exact::MappingKind::Interval, exact::Objective::Period,
                 interval_period),
       hard_cell(22, Column::SpecialApp, interval_shape,
                 exact::MappingKind::Interval, exact::Objective::Period,
                 heuristic_period_interval),
       hard_cell(23, Column::CommHom, interval_shape,
                 exact::MappingKind::Interval, exact::Objective::Period,
                 heuristic_period_interval),
       hard_cell(24, Column::FullyHet, interval_shape,
                 exact::MappingKind::Interval, exact::Objective::Period,
                 heuristic_period_interval)});

  // --- Row 3: Latency, one-to-one (Thm 8 poly on FH; Thm 9 NP-c). --------
  const auto one_to_one_latency = [](const core::Problem& p) {
    const auto s = algorithms::one_to_one_min_latency_fully_hom(p);
    return s ? std::optional<double>(s->value) : std::nullopt;
  };
  table.add_row(
      {"Latency 1-to-1",
       poly_cell(31, Column::FullyHom, small, exact::MappingKind::OneToOne,
                 exact::Objective::Latency, one_to_one_latency),
       hard_cell(32, Column::SpecialApp, small, exact::MappingKind::OneToOne,
                 exact::Objective::Latency, heuristic_latency_one_to_one),
       hard_cell(33, Column::CommHom, small, exact::MappingKind::OneToOne,
                 exact::Objective::Latency, heuristic_latency_one_to_one),
       hard_cell(34, Column::FullyHet, small, exact::MappingKind::OneToOne,
                 exact::Objective::Latency, heuristic_latency_one_to_one)});

  // --- Row 4: Latency, interval (Thm 12 poly on com-hom; Thm 13 NP-c). ---
  const auto interval_latency = [](const core::Problem& p) {
    const auto s = algorithms::interval_min_latency(p);
    return s ? std::optional<double>(s->value) : std::nullopt;
  };
  table.add_row(
      {"Latency interval",
       poly_cell(41, Column::FullyHom, interval_shape,
                 exact::MappingKind::Interval, exact::Objective::Latency,
                 interval_latency),
       poly_cell(42, Column::SpecialApp, interval_shape,
                 exact::MappingKind::Interval, exact::Objective::Latency,
                 interval_latency),
       poly_cell(43, Column::CommHom, interval_shape,
                 exact::MappingKind::Interval, exact::Objective::Latency,
                 interval_latency),
       hard_cell(44, Column::FullyHet, interval_shape,
                 exact::MappingKind::Interval, exact::Objective::Latency,
                 heuristic_latency_interval)});

  std::fputs(table.render().c_str(), stdout);
  std::puts("\nPaper's Table 1 verdicts for comparison:");
  std::puts("  Period 1-to-1:    poly | poly | poly | NP-complete");
  std::puts("  Period interval:  poly | NP-c(*) | NP-c | NP-complete");
  std::puts("  Latency 1-to-1:   poly | NP-c(*) | NP-c | NP-complete");
  std::puts("  Latency interval: poly | poly | poly | NP-complete");
  std::puts("  (*) = polynomial for one application, NP-hard for several.");
  return 0;
}
