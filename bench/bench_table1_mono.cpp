/// \file bench_table1_mono.cpp
/// Experiment TAB1: reproduces Table 1 (mono-criterion complexity matrix),
/// driven end-to-end through the `pipeopt::api` facade.
///
/// For every (problem, platform-column) cell:
///  * cells the paper proves polynomial — issue the plain request and let
///    capability dispatch pick the paper's algorithm (the cell text names
///    the solver that won, verifying the registry routes each cell to its
///    theorem), then compare against the exhaustive oracle on random
///    instances (it must be optimal on all of them);
///  * cells the paper proves NP-complete — report the exhaustive solver's
///    node counts as the instance grows (the exponential wall) and the gap
///    of a forced polynomial heuristic against the exact optimum.
///
/// Both communication models are exercised (instances alternate).

#include <cstdio>
#include <optional>
#include <string>

#include "api/registry.hpp"
#include "bench_support.hpp"
#include "util/numeric.hpp"
#include "util/table.hpp"

namespace {

using namespace pipeopt;
using bench::CellShape;
using bench::Column;

constexpr int kPolyInstances = 30;
constexpr int kHardInstances = 10;

api::SolveRequest base_request(api::Objective objective, api::MappingKind kind) {
  api::SolveRequest request;
  request.objective = objective;
  request.kind = kind;
  return request;
}

/// Runs auto-dispatch against the forced exhaustive oracle. The winning
/// solver must come from the Polynomial tier — escaping to exact search in
/// a cell the paper proves tractable is reported as a routing failure.
std::string poly_cell(std::uint64_t seed, Column column, CellShape shape,
                      api::Objective objective, api::MappingKind kind) {
  util::Rng rng(seed);
  bench::CellReport report;
  bench::DispatchAudit audit;
  for (int i = 0; i < kPolyInstances; ++i) {
    shape.comm = (i % 2 == 0) ? core::CommModel::Overlap
                              : core::CommModel::NoOverlap;
    const auto problem = bench::make_instance(rng, column, shape);

    const auto request = base_request(objective, kind);
    const auto fast = api::solve(problem, request);
    report.algo_us.add(fast.wall_seconds * 1e6);
    if (fast.solved() && !audit.record(fast)) continue;

    auto oracle_request = request;
    oracle_request.solver = "exact-enumeration";
    const auto oracle = api::solve(problem, oracle_request);
    ++report.total;
    // A feasibility disagreement with the oracle is a miss.
    if (fast.solved() == oracle.solved() &&
        (!fast.solved() || util::approx_eq(fast.value, oracle.value))) {
      ++report.optimal;
    }
  }
  char buf[160];
  if (audit.misrouted > 0) {
    std::snprintf(buf, sizeof(buf), "ROUTING FAILURE: %d/%d escaped poly tier",
                  audit.misrouted, kPolyInstances);
  } else {
    std::snprintf(buf, sizeof(buf), "poly[%s]: optimal %s, median %.0fus",
                  audit.names().c_str(), report.optimality().c_str(),
                  report.algo_us.median());
  }
  return buf;
}

/// Exact-blowup + heuristic-gap evidence for an NP-complete cell; the
/// heuristic is a forced facade solver.
std::string hard_cell(std::uint64_t seed, Column column, CellShape shape,
                      api::Objective objective, api::MappingKind kind,
                      const char* heuristic_solver) {
  util::Rng rng(seed);
  bench::CellReport report;
  util::Summary nodes;
  for (int i = 0; i < kHardInstances; ++i) {
    shape.comm = (i % 2 == 0) ? core::CommModel::Overlap
                              : core::CommModel::NoOverlap;
    const auto problem = bench::make_instance(rng, column, shape);

    auto oracle_request = base_request(objective, kind);
    oracle_request.solver = "exact-enumeration";
    const auto oracle = api::solve(problem, oracle_request);
    if (!oracle.solved()) continue;
    if (const auto n = bench::diagnostic_value(oracle, "nodes")) nodes.add(*n);

    auto heuristic_request = base_request(objective, kind);
    heuristic_request.solver = heuristic_solver;
    const auto heuristic = api::solve(problem, heuristic_request);
    if (!heuristic.solved()) continue;
    ++report.total;
    report.gap.add(heuristic.value / oracle.value);
    if (util::approx_eq(heuristic.value, oracle.value)) ++report.optimal;
  }
  char buf[160];
  if (report.total == 0) {
    std::snprintf(buf, sizeof(buf), "NP-c: exact median %.0f nodes",
                  nodes.median());
  } else {
    std::snprintf(buf, sizeof(buf),
                  "NP-c: exact median %.0f nodes; %s gap med %.3fx (opt %s)",
                  nodes.median(), heuristic_solver, report.gap.median(),
                  report.optimality().c_str());
  }
  return buf;
}

}  // namespace

int main() {
  std::puts("=== TAB1: Table 1 — mono-criterion complexity matrix ===");
  std::puts("(all cells via api::solve; poly cells name the auto-dispatched");
  std::puts(" solver and compare it with the exhaustive oracle)\n");

  CellShape small;          // shared by one-to-one rows (p >= N needed)
  small.applications = 2;
  small.min_stages = 1;
  small.max_stages = 3;
  small.processors = 6;

  CellShape interval_shape = small;  // interval rows can be denser
  interval_shape.max_stages = 4;
  interval_shape.processors = 5;

  util::Table table({"problem", bench::to_string(Column::FullyHom),
                     bench::to_string(Column::SpecialApp),
                     bench::to_string(Column::CommHom),
                     bench::to_string(Column::FullyHet)});

  // --- Row 1: Period, one-to-one (Thm 1 poly; Thm 2 NP-c on com-het). ----
  table.add_row({"Period 1-to-1",
                 poly_cell(11, Column::FullyHom, small, api::Objective::Period,
                           api::MappingKind::OneToOne),
                 poly_cell(12, Column::SpecialApp, small, api::Objective::Period,
                           api::MappingKind::OneToOne),
                 poly_cell(13, Column::CommHom, small, api::Objective::Period,
                           api::MappingKind::OneToOne),
                 hard_cell(14, Column::FullyHet, small, api::Objective::Period,
                           api::MappingKind::OneToOne, "rank-matching")});

  // --- Row 2: Period, interval (Thm 3 poly on FH; Thms 4-5 NP-c). --------
  table.add_row({"Period interval",
                 poly_cell(21, Column::FullyHom, interval_shape,
                           api::Objective::Period, api::MappingKind::Interval),
                 hard_cell(22, Column::SpecialApp, interval_shape,
                           api::Objective::Period, api::MappingKind::Interval,
                           "local-search"),
                 hard_cell(23, Column::CommHom, interval_shape,
                           api::Objective::Period, api::MappingKind::Interval,
                           "local-search"),
                 hard_cell(24, Column::FullyHet, interval_shape,
                           api::Objective::Period, api::MappingKind::Interval,
                           "local-search")});

  // --- Row 3: Latency, one-to-one (Thm 8 poly on FH; Thm 9 NP-c). --------
  table.add_row({"Latency 1-to-1",
                 poly_cell(31, Column::FullyHom, small, api::Objective::Latency,
                           api::MappingKind::OneToOne),
                 hard_cell(32, Column::SpecialApp, small,
                           api::Objective::Latency, api::MappingKind::OneToOne,
                           "rank-matching"),
                 hard_cell(33, Column::CommHom, small, api::Objective::Latency,
                           api::MappingKind::OneToOne, "rank-matching"),
                 hard_cell(34, Column::FullyHet, small, api::Objective::Latency,
                           api::MappingKind::OneToOne, "rank-matching")});

  // --- Row 4: Latency, interval (Thm 12 poly on com-hom; Thm 13 NP-c). ---
  table.add_row({"Latency interval",
                 poly_cell(41, Column::FullyHom, interval_shape,
                           api::Objective::Latency, api::MappingKind::Interval),
                 poly_cell(42, Column::SpecialApp, interval_shape,
                           api::Objective::Latency, api::MappingKind::Interval),
                 poly_cell(43, Column::CommHom, interval_shape,
                           api::Objective::Latency, api::MappingKind::Interval),
                 hard_cell(44, Column::FullyHet, interval_shape,
                           api::Objective::Latency, api::MappingKind::Interval,
                           "local-search")});

  std::fputs(table.render().c_str(), stdout);
  std::puts("\nPaper's Table 1 verdicts for comparison:");
  std::puts("  Period 1-to-1:    poly | poly | poly | NP-complete");
  std::puts("  Period interval:  poly | NP-c(*) | NP-c | NP-complete");
  std::puts("  Latency 1-to-1:   poly | NP-c(*) | NP-c | NP-complete");
  std::puts("  Latency interval: poly | poly | poly | NP-complete");
  std::puts("  (*) = polynomial for one application, NP-hard for several.");
  return 0;
}
